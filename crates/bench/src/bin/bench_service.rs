//! End-to-end latency/throughput benchmark of the decomposition
//! service: an in-process `softhw-service` server on a loopback socket,
//! hammered by concurrent client connections with per-request-class
//! traffic. Reports p50/p99 wall-clock latency per class (measured at
//! the client, so parse + route + solve + frame + TCP are all in the
//! number) and aggregate throughput.
//!
//! ```text
//! bench_service [out.json] [--clients n] [--requests n] [--store path]
//!               [--check baseline.json]
//! ```
//!
//! Request classes:
//! - `shw_warm`: exact `shw` over schemas the striped cache has already
//!   served (the headline repeated-query path — index, instances, sweep
//!   state, and width decisions are all warm);
//! - `shw_leq_warm`, `hw_warm`, `best_warm`, `stats`: the other classes
//!   over the same warm schemas;
//! - `shw_cold`: exact `shw` over schemas never seen before (every
//!   request pays generation + instance build + DP).
//!
//! Three throughput phases run against one server:
//! - sequential (`service/throughput_rps`): one request in flight per
//!   connection, the pre-pipelining lockstep workload;
//! - pipelined (`service/throughput_pipelined_rps`): the same traffic
//!   mix with a window of [`WINDOW`] requests in flight per connection
//!   (`pipelined` latency rows measure enqueue-to-response, so queueing
//!   behind the window is in the number);
//! - batched (`service/throughput_batch_rps`, in sub-requests/s): BATCH
//!   frames of [`BATCH_SIZE`] warm bodies each, one roundtrip per frame
//!   (`batch_frame` latency rows are per frame, not per sub-request).
//!
//! After the three phases one `METRICS` scrape turns the server's
//! per-stage duration histograms into `service/stage_<name>_*` rows —
//! where the wall clock went, stage by stage, across everything the
//! phases served (reported, not gated).
//!
//! `--check <baseline.json>` gates after the run: every
//! `service/throughput*` row present in both runs must be at least half
//! the baseline's; pipelined/batched rows missing from an older baseline
//! must instead beat its *sequential* throughput outright — the whole
//! point of the pipelined server.
//!
//! With `--store <path>` the server persists through the decomposition
//! store, and a second phase **restarts** it — a fresh `ServiceState`
//! over the same store file, in-memory caches cold — and measures
//! `shw_store_warm`: the repeated-query path served from warm-started
//! persisted results instead of anything computed this process
//! lifetime. That is the number a `softhw-serve` restart ships with.

use softhw_hypergraph::random::{random_hypergraph, RandomConfig};
use softhw_hypergraph::{named, render_hypergraph};
use softhw_service::{
    read_frame, roundtrip, BatchRequest, EvalKind, Request, RequestClass, Response, ServeOptions,
    Server, ServiceConfig, ServiceState,
};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::{BufReader, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Requests kept in flight per connection during the pipelined phase.
const WINDOW: usize = 64;

/// Sub-requests per BATCH frame during the batched phase.
const BATCH_SIZE: usize = 32;

struct Args {
    out: Option<String>,
    clients: usize,
    requests: usize,
    store: Option<String>,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut out = None;
    let mut clients = 8;
    let mut requests = 200;
    let mut store = None;
    let mut check = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--clients" => {
                clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients n");
            }
            "--requests" => {
                requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests n");
            }
            "--store" => {
                store = Some(args.next().expect("--store path"));
            }
            "--check" => {
                check = Some(args.next().expect("--check baseline.json"));
            }
            other => out = Some(other.to_string()),
        }
    }
    Args {
        out,
        clients,
        requests,
        store,
        check,
    }
}

/// (class label, request) pairs the clients rotate through.
fn traffic() -> Vec<(&'static str, Request)> {
    let warm: Vec<String> = [
        named::h2(),
        named::cycle(6),
        named::cycle(8),
        named::grid(3, 3),
        named::triangle_star(3),
    ]
    .iter()
    .map(render_hypergraph)
    .collect();
    let mut out = Vec::new();
    for schema in &warm {
        out.push(("shw_warm", Request::new(RequestClass::Shw, schema.clone())));
        out.push((
            "shw_leq_warm",
            Request::new(RequestClass::ShwLeq(2), schema.clone()),
        ));
        out.push(("hw_warm", Request::new(RequestClass::Hw, schema.clone())));
        out.push((
            "best_warm",
            Request::new(RequestClass::Best(EvalKind::Trivial, 2), schema.clone()),
        ));
        out.push(("stats", Request::new(RequestClass::Stats, schema.clone())));
    }
    out
}

/// A cold-schema request: a random hypergraph no other request shares.
fn cold_request(seed: u64) -> Request {
    let h = random_hypergraph(
        &RandomConfig {
            num_vertices: 8,
            num_edges: 8,
            min_arity: 2,
            max_arity: 3,
            connect: true,
        },
        seed,
    );
    Request::new(RequestClass::Shw, render_hypergraph(&h))
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

fn main() {
    let args = parse_args();
    let state = match &args.store {
        Some(path) => ServiceState::open_store(ServiceConfig::default(), path).expect("open store"),
        None => ServiceState::new(ServiceConfig::default()),
    };
    // Three measured phases share this server: warmup + sequential
    // clients, then pipelined clients, then batch clients. The queue
    // must hold every request the pipelined windows can have in flight
    // at once, or the server sheds them with BUSY mid-measurement.
    let server = Server::bind(
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: args.clients,
            // Warmup + three phases of clients + the METRICS scrape.
            max_conns: Some(3 * args.clients as u64 + 2),
            queue_depth: (2 * args.clients * WINDOW).max(128),
        },
        state,
    )
    .expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let server_thread = std::thread::spawn(move || server.run());

    let traffic = traffic();
    // Warm the caches once so the *_warm classes measure the warm path
    // (the first client request would otherwise fold a cold build into
    // one sample).
    {
        let mut stream = TcpStream::connect(addr).expect("warmup connect");
        for (_, req) in &traffic {
            let resp = roundtrip(&mut stream, req).expect("warmup roundtrip");
            assert!(
                !matches!(resp, Response::Error { .. }),
                "warmup failed: {resp:?}"
            );
        }
    }

    // Fire: each client thread owns one connection and pulls request
    // indices off a shared counter. Cold requests are interleaved 1:10
    // with unique seeds.
    let total = args.requests.max(args.clients);
    let next = AtomicUsize::new(0);
    let samples: Mutex<Vec<(&'static str, f64)>> = Mutex::new(Vec::with_capacity(total));
    let wall = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..args.clients {
            scope.spawn(|| {
                let mut stream = TcpStream::connect(addr).expect("client connect");
                let mut local: Vec<(&'static str, f64)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let cold;
                    let (label, req) = if i % 10 == 9 {
                        cold = cold_request(1_000 + i as u64);
                        ("shw_cold", &cold)
                    } else {
                        let (label, req) = &traffic[i % traffic.len()];
                        (*label, req)
                    };
                    let start = Instant::now();
                    let resp = roundtrip(&mut stream, req).expect("bench roundtrip");
                    let us = start.elapsed().as_secs_f64() * 1e6;
                    assert!(
                        !matches!(resp, Response::Error { .. }),
                        "request failed: {resp:?}"
                    );
                    local.push((label, us));
                }
                samples
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .extend(local);
            });
        }
    });
    let wall_s = wall.elapsed().as_secs_f64();

    // Pipelined phase: same traffic mix, but each client keeps WINDOW
    // requests in flight on its one connection instead of running in
    // lockstep. Responses arrive in request order, so the client reads
    // them back against a FIFO of send timestamps.
    let pipe_total = args.requests.max(args.clients * WINDOW);
    let next = AtomicUsize::new(0);
    let pipe_samples: Mutex<Vec<(&'static str, f64)>> = Mutex::new(Vec::with_capacity(pipe_total));
    let pipe_wall = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..args.clients {
            scope.spawn(|| {
                let mut stream = TcpStream::connect(addr).expect("pipelined connect");
                stream.set_nodelay(true).ok();
                let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                let mut sent: VecDeque<Instant> = VecDeque::with_capacity(WINDOW);
                let mut local: Vec<(&'static str, f64)> = Vec::new();
                loop {
                    // Keep the window full, then retire the oldest
                    // in-flight request.
                    let mut burst = String::new();
                    while sent.len() < WINDOW {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= pipe_total {
                            break;
                        }
                        let frame = if i % 10 == 9 {
                            cold_request(100_000 + i as u64).encode()
                        } else {
                            traffic[i % traffic.len()].1.encode()
                        };
                        burst.push_str(&frame);
                        sent.push_back(Instant::now());
                    }
                    if !burst.is_empty() {
                        stream.write_all(burst.as_bytes()).expect("pipelined write");
                    }
                    let Some(start) = sent.pop_front() else { break };
                    let lines = read_frame(&mut reader)
                        .expect("pipelined read")
                        .expect("pipelined frame");
                    // Status-line check only: fully decoding every
                    // witness TD frame would bill client-side parsing
                    // to the server's throughput number.
                    let status = lines.first().map(String::as_str).unwrap_or("");
                    assert!(
                        !status.starts_with("ERR") && !status.starts_with("BUSY"),
                        "pipelined request failed: {status}"
                    );
                    local.push(("pipelined", start.elapsed().as_secs_f64() * 1e6));
                }
                pipe_samples
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .extend(local);
            });
        }
    });
    let pipe_wall_s = pipe_wall.elapsed().as_secs_f64();
    let pipe_requests = pipe_samples
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .len();
    let throughput_pipelined = pipe_requests as f64 / pipe_wall_s;

    // Batched phase: BATCH frames of BATCH_SIZE warm solver bodies, one
    // frame in flight per connection. Latency is per frame; throughput
    // counts the sub-requests each frame carries.
    let batch_items: Vec<Request> = traffic
        .iter()
        .filter(|(label, _)| *label != "stats")
        .map(|(_, req)| req.clone())
        .collect();
    let batch_frames = pipe_total.div_ceil(BATCH_SIZE).max(args.clients);
    let next = AtomicUsize::new(0);
    let batch_samples: Mutex<Vec<(&'static str, f64)>> =
        Mutex::new(Vec::with_capacity(batch_frames));
    let batch_wall = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..args.clients {
            scope.spawn(|| {
                let mut stream = TcpStream::connect(addr).expect("batch connect");
                stream.set_nodelay(true).ok();
                let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                let mut local: Vec<(&'static str, f64)> = Vec::new();
                loop {
                    let f = next.fetch_add(1, Ordering::Relaxed);
                    if f >= batch_frames {
                        break;
                    }
                    let items: Vec<Request> = (0..BATCH_SIZE)
                        .map(|j| batch_items[(f * BATCH_SIZE + j) % batch_items.len()].clone())
                        .collect();
                    let frame = BatchRequest::new(items).encode();
                    let start = Instant::now();
                    stream.write_all(frame.as_bytes()).expect("batch write");
                    let lines = read_frame(&mut reader)
                        .expect("batch read")
                        .expect("batch frame");
                    let us = start.elapsed().as_secs_f64() * 1e6;
                    match Response::decode(&lines).expect("batch decode") {
                        Response::Batch { responses } => {
                            assert_eq!(responses.len(), BATCH_SIZE);
                            for resp in &responses {
                                assert!(
                                    !matches!(resp, Response::Error { .. } | Response::Busy { .. }),
                                    "batched sub-request failed: {resp:?}"
                                );
                            }
                        }
                        other => panic!("expected a batch response, got {other:?}"),
                    }
                    local.push(("batch_frame", us));
                }
                batch_samples
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .extend(local);
            });
        }
    });
    let batch_wall_s = batch_wall.elapsed().as_secs_f64();
    let throughput_batch = (batch_frames * BATCH_SIZE) as f64 / batch_wall_s;

    // Per-stage timing: scrape the METRICS exposition once after the
    // three phases and turn the `softhw_stage_duration_us` histograms
    // into rows — where the wall clock went (solver stages, cache and
    // store probes, queue wait, reorder dwell) across everything the
    // phases just served.
    let stage_rows = {
        let mut stream = TcpStream::connect(addr).expect("metrics connect");
        match roundtrip(&mut stream, &Request::new(RequestClass::Metrics, ""))
            .expect("metrics roundtrip")
        {
            Response::Metrics { lines } => {
                let mut rows = stage_series(&lines);
                // The memory stat rides along: resident bytes per
                // cached schema, picked up by bench_trend's memory
                // table so cache-footprint growth is tracked across
                // baselines like the timing rows.
                if let Some(v) = lines.iter().find_map(|l| {
                    l.strip_prefix("softhw_bytes_per_cached_schema ")
                        .and_then(|v| v.trim().parse::<f64>().ok())
                }) {
                    println!("service/bytes_per_cached_schema {v:.0} bytes");
                    rows.push(("service/bytes_per_cached_schema_bytes".to_string(), v));
                }
                rows
            }
            other => panic!("expected a METRICS response, got {other:?}"),
        }
    };

    // All client connections are closed; the server has accepted its
    // max_conns (warmup + three phases of clients + the scrape) and
    // drains cleanly.
    let served = server_thread
        .join()
        .expect("server thread")
        .expect("server run");
    assert_eq!(served, 3 * args.clients as u64 + 2);

    let mut samples = samples
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    samples.extend(
        pipe_samples
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .copied(),
    );
    samples.extend(
        batch_samples
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .copied(),
    );
    // Throughput describes phase 1 only (the pipelined/batched phases
    // and the restart-warm phase below extend `samples` but were
    // measured on their own wall clocks).
    let phase1_requests = samples.len() - pipe_requests - batch_frames;
    let throughput = phase1_requests as f64 / wall_s;

    // Restart-warm phase: a fresh state over the same store file — the
    // in-memory caches are cold, everything served comes from persisted
    // results (warm-started at boot). This is the latency a
    // `softhw-serve` restart offers on its hot schemas.
    if let Some(path) = &args.store {
        let state = ServiceState::open_store(ServiceConfig::default(), path)
            .expect("reopen store for restart-warm phase");
        let server = Server::bind(
            ServeOptions {
                addr: "127.0.0.1:0".to_string(),
                workers: args.clients,
                max_conns: Some(args.clients as u64),
                ..ServeOptions::default()
            },
            state,
        )
        .expect("bind restart server");
        let addr = server.local_addr().expect("local addr");
        let server_thread = std::thread::spawn(move || server.run());
        let shw_reqs: Vec<Request> = traffic
            .iter()
            .filter(|(label, _)| *label == "shw_warm")
            .map(|(_, req)| req.clone())
            .collect();
        let next = AtomicUsize::new(0);
        let store_samples: Mutex<Vec<(&'static str, f64)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..args.clients {
                scope.spawn(|| {
                    let mut stream = TcpStream::connect(addr).expect("client connect");
                    let mut local: Vec<(&'static str, f64)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        let req = &shw_reqs[i % shw_reqs.len()];
                        let start = Instant::now();
                        let resp = roundtrip(&mut stream, req).expect("store-warm roundtrip");
                        let us = start.elapsed().as_secs_f64() * 1e6;
                        assert!(
                            !matches!(resp, Response::Error { .. }),
                            "request failed: {resp:?}"
                        );
                        local.push(("shw_store_warm", us));
                    }
                    store_samples
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .extend(local);
                });
            }
        });
        server_thread
            .join()
            .expect("restart server thread")
            .expect("restart server run");
        samples.extend(
            store_samples
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .iter()
                .copied(),
        );
    }
    let mut by_class: Vec<(&'static str, Vec<f64>)> = Vec::new();
    for (label, us) in &samples {
        match by_class.iter_mut().find(|(l2, _)| l2 == label) {
            Some((_, v)) => v.push(*us),
            None => by_class.push((label, vec![*us])),
        }
    }
    by_class.sort_by_key(|(l2, _)| *l2);

    let mut rows = Vec::new();
    for (label, mut v) in by_class {
        v.sort_by(|a, b| a.total_cmp(b));
        let p50 = percentile(&v, 0.50);
        let p99 = percentile(&v, 0.99);
        println!(
            "service/{label:<14} n={:<5} p50={p50:>10.1}us p99={p99:>10.1}us",
            v.len()
        );
        rows.push((format!("service/{label}_p50_us"), p50));
        rows.push((format!("service/{label}_p99_us"), p99));
    }
    println!(
        "service/throughput           {throughput:.0} req/s over {} requests, {} clients (sequential)",
        phase1_requests, args.clients
    );
    println!(
        "service/throughput_pipelined {throughput_pipelined:.0} req/s over {} requests, window {WINDOW}",
        pipe_requests
    );
    println!(
        "service/throughput_batch     {throughput_batch:.0} sub-req/s over {} frames of {BATCH_SIZE}",
        batch_frames
    );
    rows.push(("service/throughput_rps".to_string(), throughput));
    rows.push((
        "service/throughput_pipelined_rps".to_string(),
        throughput_pipelined,
    ));
    rows.push(("service/throughput_batch_rps".to_string(), throughput_batch));
    rows.extend(stage_rows);
    if let Some(out) = args.out {
        let json = match std::fs::read_to_string(&out) {
            // An existing bench_baseline emission: merge the service
            // rows into its "benchmarks" object, so one BENCH_pr*.json
            // carries solver gates and service latencies together.
            Ok(existing) => merge_rows(&existing, &rows)
                .unwrap_or_else(|| panic!("{out} exists but has no benchmarks object")),
            Err(_) => standalone_json(&rows),
        };
        std::fs::write(&out, &json).expect("write json");
        println!("wrote {out}");
    }
    if let Some(baseline) = &args.check {
        if let Err(msg) = check_against(baseline, &rows) {
            eprintln!("BENCH CHECK FAILED: {msg}");
            std::process::exit(1);
        }
        println!("bench_service check passed against {baseline}");
    }
}

/// `service/stage_<name>_{total_us,calls}` rows from the
/// `softhw_stage_duration_us` histogram series of a METRICS
/// exposition. Stages never hit in this run are dropped; like the
/// latency rows, stage rows are reported but not gated.
fn stage_series(lines: &[String]) -> Vec<(String, f64)> {
    let field = |line: &str, prefix: &str| -> Option<(String, f64)> {
        let rest = line.strip_prefix(prefix)?;
        let (stage, rest) = rest.split_once("\"}")?;
        let value: f64 = rest.trim().parse().ok()?;
        Some((stage.to_string(), value))
    };
    let mut sums: Vec<(String, f64)> = Vec::new();
    let mut counts: Vec<(String, f64)> = Vec::new();
    for line in lines {
        if let Some(kv) = field(line, "softhw_stage_duration_us_sum{stage=\"") {
            sums.push(kv);
        } else if let Some(kv) = field(line, "softhw_stage_duration_us_count{stage=\"") {
            counts.push(kv);
        }
    }
    let mut rows = Vec::new();
    for (stage, sum) in sums {
        let calls = counts
            .iter()
            .find(|(s, _)| s == &stage)
            .map_or(0.0, |(_, c)| *c);
        if calls > 0.0 {
            println!(
                "service/stage/{stage:<16} calls={calls:<8} total={sum:>12.0}us avg={:>9.1}us",
                sum / calls
            );
            rows.push((format!("service/stage_{stage}_total_us"), sum));
            rows.push((format!("service/stage_{stage}_calls"), calls));
        }
    }
    rows
}

/// Throughput rows gated by `--check`. Latency rows are reported but
/// not gated: on shared CI runners they are too noisy to block on,
/// while throughput over hundreds of requests amortizes the noise.
const THROUGHPUT_GATES: &[&str] = &[
    "service/throughput_rps",
    "service/throughput_pipelined_rps",
    "service/throughput_batch_rps",
];

/// A throughput row may not fall below `baseline / GATE_FACTOR`.
const GATE_FACTOR: f64 = 2.0;

/// Gates the current run's throughput rows against a baseline emission.
/// Rows present in both runs use the regression factor; pipelined and
/// batched rows missing from an older baseline must instead beat that
/// baseline's sequential throughput outright.
fn check_against(baseline_path: &str, rows: &[(String, f64)]) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("--check {baseline_path}: {e}"))?;
    let baseline = softhw_bench::parse_baseline_json(&text);
    let old = |name: &str| baseline.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    for name in THROUGHPUT_GATES {
        let new = rows
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("current run lacks {name}"))?;
        match old(name) {
            Some(prev) => {
                println!(
                    "check {name}: {new:.1} req/s vs baseline {prev:.1} req/s ({:.2}x)",
                    new / prev
                );
                if new < prev / GATE_FACTOR {
                    return Err(format!(
                        "{name} regressed: {new:.1} req/s < baseline {prev:.1} req/s / {GATE_FACTOR}"
                    ));
                }
            }
            None => {
                // A pre-pipelining baseline: the new concurrency paths
                // must at least beat its sequential throughput.
                let seq = old("service/throughput_rps").ok_or_else(|| {
                    format!(
                        "baseline {baseline_path} lacks service/throughput_rps — corrupt or wrong file?"
                    )
                })?;
                println!(
                    "check {name}: {new:.1} req/s vs baseline sequential {seq:.1} req/s ({:.2}x, new row)",
                    new / seq
                );
                if new < seq {
                    return Err(format!(
                        "{name}: {new:.1} req/s does not beat the baseline's sequential {seq:.1} req/s"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// A self-contained `{"benchmarks": {...}}` document from the rows.
fn standalone_json(rows: &[(String, f64)]) -> String {
    let mut json = String::from("{\n  \"benchmarks\": {\n");
    for (i, (name, value)) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{name}\": {value:.1}{sep}");
    }
    json.push_str("  }\n}\n");
    json
}

/// Splices the rows into an existing emission's `"benchmarks"` object
/// (dropping any previous `service/` rows so reruns stay idempotent).
/// Returns `None` if the document has no benchmarks object.
fn merge_rows(existing: &str, rows: &[(String, f64)]) -> Option<String> {
    let mut out: Vec<String> = Vec::new();
    let mut lines = existing.lines().peekable();
    // Copy up to and including the benchmarks opener.
    loop {
        let line = lines.next()?;
        let opened = line.trim_start().starts_with("\"benchmarks\"");
        out.push(line.to_string());
        if opened {
            break;
        }
    }
    // Copy the object's entries (minus stale service rows) until its
    // closing brace.
    let mut entries: Vec<String> = Vec::new();
    let closer = loop {
        let line = lines.next()?;
        if line.trim_start().starts_with('}') {
            break line;
        }
        if !line.trim_start().starts_with("\"service/") {
            entries.push(line.trim_end().trim_end_matches(',').to_string());
        }
    };
    for (name, value) in rows {
        entries.push(format!("    \"{name}\": {value:.1}"));
    }
    let n = entries.len();
    for (i, e) in entries.into_iter().enumerate() {
        let sep = if i + 1 == n { "" } else { "," };
        out.push(format!("{e}{sep}"));
    }
    out.push(closer.to_string());
    for line in lines {
        out.push(line.to_string());
    }
    let mut joined = out.join("\n");
    joined.push('\n');
    Some(joined)
}
