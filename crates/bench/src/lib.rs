//! Shared harness utilities for the experiment binaries that regenerate
//! the paper's tables and figures. Each binary prints the same rows or
//! series the paper reports (plus machine-independent logical cost
//! counters); `EXPERIMENTS.md` records paper-vs-measured.

#![warn(missing_docs)]

use softhw_core::td::TreeDecomposition;
use softhw_engine::yannakakis::EvalStats;
use softhw_engine::Database;
use softhw_hypergraph::Hypergraph;
use softhw_query::{ConjunctiveQuery, ExecResult};
use std::time::Instant;

/// A prepared experiment instance: bound query, hypergraph, atom
/// relations.
pub struct Instance {
    /// The paper's query name.
    pub name: &'static str,
    /// Width parameter used by the paper for this query.
    pub k: usize,
    /// The bound conjunctive query.
    pub cq: ConjunctiveQuery,
    /// Its hypergraph.
    pub h: Hypergraph,
    /// Materialised atom relations.
    pub atoms: Vec<softhw_engine::Relation>,
    /// The populated database.
    pub db: Database,
}

/// Binds and materialises one of the six benchmark queries on generated
/// data (deterministic in `seed`).
pub fn prepare(name: &'static str, seed: u64) -> Instance {
    let (_, sql, k) = softhw_workloads::queries::all_queries()
        .into_iter()
        .find(|(n, _, _)| *n == name)
        .unwrap_or_else(|| panic!("unknown query {name}"));
    let db = softhw_workloads::database_for(name, seed);
    let cq = softhw_query::bind(&softhw_query::parse_sql(sql).expect("fixed SQL"), &db)
        .expect("schema matches");
    let h = cq.hypergraph();
    let atoms = softhw_query::atom_relations(&cq, &db);
    Instance {
        name,
        k,
        cq,
        h,
        atoms,
        db,
    }
}

/// One timed decomposition evaluation.
pub struct TimedRun {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// The aggregate value produced.
    pub value: Option<u64>,
    /// Logical counters.
    pub stats: EvalStats,
}

/// Executes a decomposition plan, timing wall clock.
pub fn run_decomposition(inst: &Instance, td: &TreeDecomposition) -> Option<TimedRun> {
    let plan = softhw_query::build_plan(&inst.cq, &inst.h, td).ok()?;
    let start = Instant::now();
    let ExecResult { value, stats, .. } = softhw_query::execute(&inst.cq, &inst.atoms, &plan);
    Some(TimedRun {
        seconds: start.elapsed().as_secs_f64(),
        value,
        stats,
    })
}

/// Executes a decomposition plan with a materialisation cap; `None` when
/// the cap is exceeded (the harness's "timeout").
pub fn run_decomposition_capped(
    inst: &Instance,
    td: &TreeDecomposition,
    cap: u64,
) -> Option<TimedRun> {
    let plan = softhw_query::build_plan(&inst.cq, &inst.h, td).ok()?;
    let start = Instant::now();
    let res = softhw_query::plan::execute_with_cap(&inst.cq, &inst.atoms, &plan, cap)?;
    Some(TimedRun {
        seconds: start.elapsed().as_secs_f64(),
        value: res.value,
        stats: res.stats,
    })
}

/// Executes the baseline binary-join plan, timing wall clock. `None` if
/// the run exceeded the intermediate-result cap ("timeout").
pub fn run_baseline(inst: &Instance, cap: u64) -> Option<TimedRun> {
    let start = Instant::now();
    let res = softhw_engine::baseline::run_baseline(&inst.atoms, &[inst.cq.agg_var], cap)?;
    let value = match inst.cq.agg {
        softhw_query::Agg::Min => res.answer.min_of(inst.cq.agg_var),
        softhw_query::Agg::Max => res.answer.max_of(inst.cq.agg_var),
        softhw_query::Agg::Count => Some(res.answer.len() as u64),
    };
    Some(TimedRun {
        seconds: start.elapsed().as_secs_f64(),
        value,
        stats: res.stats,
    })
}

/// Reads `"name": <float>` entries out of a baseline JSON file emitted
/// by `bench_baseline` (no external JSON dependency in the build image).
/// Nested object keys (`"benchmarks"`, the speedup maps) simply parse as
/// their flat entries; the trend and check tooling both key on the
/// per-benchmark entry names.
pub fn parse_baseline_json(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((name, value)) = rest.split_once("\":") else {
            continue;
        };
        if let Ok(v) = value.trim().parse::<f64>() {
            out.push((name.to_string(), v));
        }
    }
    out
}

/// Prints a CSV-ish series header + rows to stdout.
pub fn print_series(title: &str, header: &str, rows: &[String]) {
    println!("## {title}");
    println!("{header}");
    for r in rows {
        println!("{r}");
    }
    println!();
}
