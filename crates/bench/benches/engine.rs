//! Criterion microbenchmarks for the relational engine: join/semijoin
//! throughput and the Yannakakis pipeline vs the greedy baseline on a
//! downscaled benchmark query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softhw_engine::baseline::run_baseline;
use softhw_engine::relation::Relation;
use softhw_query::{atom_relations, bind, build_plan, execute, parse_sql};
use softhw_workloads::hetionet::{self, HetionetScale};
use softhw_workloads::queries::Q_HTO3;
use std::hint::black_box;

fn chain_relation(n: u64, offset: u64) -> Relation {
    Relation::from_rows(vec![0, 1], (0..n).map(|i| vec![i, (i + offset) % n]))
}

fn bench_join_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("relation_ops");
    for n in [1_000u64, 10_000] {
        let r = chain_relation(n, 1);
        let mut s = chain_relation(n, 2);
        s = s.project(&[1, 0]).project(&[1, 0]); // force a copy
        g.bench_function(BenchmarkId::new("natural_join", n), |b| {
            b.iter(|| black_box(r.natural_join(&s).len()))
        });
        g.bench_function(BenchmarkId::new("semijoin", n), |b| {
            b.iter(|| black_box(r.semijoin(&s).len()))
        });
        g.bench_function(BenchmarkId::new("project_distinct", n), |b| {
            b.iter(|| black_box(r.project(&[0]).distinct().len()))
        });
    }
    g.finish();
}

fn bench_yannakakis_vs_baseline(c: &mut Criterion) {
    let scale = HetionetScale {
        nodes: 300,
        edges_per_relation: 1_500,
    };
    let db = hetionet::generate(&scale, 42);
    let cq = bind(&parse_sql(Q_HTO3).expect("fixed"), &db).expect("schema");
    let h = cq.hypergraph();
    let atoms = atom_relations(&cq, &db);
    let (_, td) = softhw_core::shw::shw(&h);
    let plan = build_plan(&cq, &h, &td).expect("plannable");

    let mut g = c.benchmark_group("q_hto3_small");
    g.bench_function("yannakakis", |b| {
        b.iter(|| black_box(execute(&cq, &atoms, &plan).value))
    });
    g.bench_function("baseline_greedy", |b| {
        b.iter(|| {
            black_box(
                run_baseline(&atoms, &[cq.agg_var], u64::MAX)
                    .expect("no cap")
                    .answer
                    .len(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_join_ops, bench_yannakakis_vs_baseline);
criterion_main!(benches);
