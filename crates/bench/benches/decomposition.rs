//! Criterion microbenchmarks for the decomposition machinery: candidate
//! bag generation, Algorithm 1, the shw/hw solvers, and the top-10
//! enumeration whose latency Table 1 reports ("a few milliseconds").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softhw_core::constraints::{concov_exact_filter, Trivial};
use softhw_core::ctd_opt::{best, top_n};
use softhw_core::soft::{cover_bags, soft_bags};
use softhw_core::{candidate_td, hw, shw};
use softhw_hypergraph::named;
use softhw_query::{bind, parse_sql, CostContext, TrueCardCost};
use std::hint::black_box;

fn bench_soft_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("soft_bags");
    for (name, h, k) in [
        ("H2/k2", named::h2(), 2),
        ("C8/k2", named::cycle(8), 2),
        ("grid3x3/k2", named::grid(3, 3), 2),
    ] {
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| black_box(soft_bags(&h, k)))
        });
    }
    g.finish();
}

fn bench_soft_arena_vs_reference(c: &mut Criterion) {
    // The acceptance gate of the arena refactor: candidate enumeration on
    // the named paper instances via the interned-bag path vs the seed's
    // FxHashSet<BitSet> path (preserved verbatim in soft::reference).
    //
    // "arena-warm" is the configuration the solvers actually run: one
    // BlockIndex shared across calls (the shw width sweep reuses it at
    // every k), id-level output. "arena-cold" pays a fresh index per
    // call. The warm path is expected to be >= 2x faster than the
    // reference on every instance; cold is still well ahead.
    use softhw_core::soft::{reference, soft_bag_ids, SoftLimits};
    use softhw_hypergraph::BlockIndex;
    let mut g = c.benchmark_group("soft_enumeration");
    let limits = SoftLimits::default();
    for (name, h, k) in [
        ("H2/k2", named::h2(), 2),
        ("H2/k3", named::h2(), 3),
        ("C8/k2", named::cycle(8), 2),
        ("grid3x3/k2", named::grid(3, 3), 2),
        ("tstar4/k2", named::triangle_star(4), 2),
    ] {
        let mut warm = BlockIndex::new(&h);
        let expected = soft_bag_ids(&mut warm, k, &limits).unwrap().len();
        g.bench_function(BenchmarkId::new("arena-warm", name), |b| {
            b.iter(|| {
                let n = soft_bag_ids(&mut warm, k, &limits).unwrap().len();
                assert_eq!(n, expected);
                black_box(n)
            })
        });
        g.bench_function(BenchmarkId::new("arena-cold", name), |b| {
            b.iter(|| {
                let mut index = BlockIndex::new(&h);
                black_box(soft_bag_ids(&mut index, k, &limits).unwrap().len())
            })
        });
        g.bench_function(BenchmarkId::new("reference", name), |b| {
            b.iter(|| black_box(reference::soft_bags_with(&h, k, &limits).unwrap().len()))
        });
    }
    g.finish();
}

fn bench_algorithm1(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithm1");
    for (name, h, k) in [("H2/k2", named::h2(), 2), ("C8/k2", named::cycle(8), 2)] {
        let bags = soft_bags(&h, k);
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| black_box(candidate_td(&h, &bags)))
        });
    }
    g.finish();
}

fn bench_width_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("width_solvers");
    let h2 = named::h2();
    g.bench_function("shw(H2)", |b| b.iter(|| black_box(shw::shw(&h2).0)));
    g.bench_function("hw(H2)", |b| b.iter(|| black_box(hw::hw(&h2).0)));
    let c8 = named::cycle(8);
    g.bench_function("shw(C8)", |b| b.iter(|| black_box(shw::shw(&c8).0)));
    g.bench_function("hw(C8)", |b| b.iter(|| black_box(hw::hw(&c8).0)));
    g.finish();
}

fn bench_table1_top10(c: &mut Criterion) {
    // The Table 1 "time to produce top-10 best TDs" measurement, on the
    // same candidate sets the paper's prototype enumerates. Cost
    // acquisition (true bag cardinalities — the paper's separate DBMS
    // round-trip) is pre-warmed outside the measurement, as in the
    // `table1` binary.
    let mut g = c.benchmark_group("table1_top10");
    for (name, sql, k) in softhw_workloads::queries::all_queries() {
        let db = softhw_workloads::database_for(name, 42);
        let cq = bind(&parse_sql(sql).expect("fixed"), &db).expect("schema");
        let h = cq.hypergraph();
        let atoms = softhw_query::atom_relations(&cq, &db);
        let bags = concov_exact_filter(&h, k, &cover_bags(&h, k, true));
        let cx = CostContext::new(&cq, &h, &atoms, &db);
        for bag in &bags {
            let _ = cx.cover(bag);
            let _ = cx.true_bag_size(bag);
        }
        let eval = TrueCardCost { cx: &cx };
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| black_box(top_n(&h, &bags, &eval, 10).len()))
        });
    }
    g.finish();
}

fn bench_constrained_best(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithm2_best");
    let c5 = named::cycle(5);
    let bags = soft_bags(&c5, 3);
    let cc = concov_exact_filter(&c5, 3, &bags);
    g.bench_function("C5/ConCov/k3", |b| {
        b.iter(|| black_box(best(&c5, &cc, &Trivial).is_some()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_soft_generation,
    bench_soft_arena_vs_reference,
    bench_algorithm1,
    bench_width_solvers,
    bench_table1_top10,
    bench_constrained_best
);
criterion_main!(benches);
