//! Concurrency correctness of the shared decomposition cache: responses
//! produced under simultaneous mixed-schema traffic must be identical,
//! byte for byte, to a single-threaded replay of the requests in the
//! order each stripe actually processed them.
//!
//! The service serialises handlers per stripe (one mutex per
//! [`softhw_core::DecompCache`]), and every cached entry point is
//! deterministic, so a response may depend on its stripe's processing
//! history (warm vs cold paths, LRU evictions, stats counters) but on
//! nothing else — not on thread scheduling, not on traffic to other
//! stripes. The test records each stripe's linearisation under real
//! contention, then replays it on a fresh single-threaded state and
//! compares every response.
//!
//! One carve-out: `STATS` responses carry **cross-stripe observability
//! rows** (`stripe_load=…`, `stripe_evictions=…`, `result_cache_*=…`,
//! `store_*=…`) that by definition reflect global concurrent progress,
//! not the routed stripe's own history — they are sampled from atomics
//! without other stripes' locks. Those rows (and only those) are
//! masked before comparison; every answer-bearing byte, including all
//! deterministic STATS fields, is still compared exactly.

use softhw_hypergraph::{named, render_hypergraph};
use softhw_service::{EvalKind, Request, RequestClass, ServiceConfig, ServiceState};
use std::sync::atomic::{AtomicUsize, Ordering};

fn workload() -> Vec<Request> {
    let schemas: Vec<String> = [
        named::h2(),
        named::cycle(4),
        named::cycle(5),
        named::cycle(6),
        named::grid(3, 3),
        named::triangle_star(3),
    ]
    .iter()
    .map(render_hypergraph)
    .collect();
    let classes = [
        RequestClass::Shw,
        RequestClass::ShwLeq(1),
        RequestClass::ShwLeq(2),
        RequestClass::Hw,
        RequestClass::HwLeq(2),
        RequestClass::Best(EvalKind::Trivial, 2),
        RequestClass::Best(EvalKind::ConCov, 2),
        RequestClass::Stats,
    ];
    let mut reqs = Vec::new();
    // Two rounds so warm-path responses (memo hits, prepared instances)
    // are part of what concurrency must preserve.
    for _ in 0..2 {
        for schema in &schemas {
            for class in classes {
                reqs.push(Request::new(class, schema.clone()));
            }
        }
    }
    reqs
}

/// Masks the volatile cross-stripe observability fields of a `STATS`
/// frame (see the module docs); all other frames pass through
/// untouched.
fn mask_volatile(encoded: &str) -> String {
    let Some(rest) = encoded.strip_prefix("OK STATS") else {
        return encoded.to_string();
    };
    let volatile = |key: &str| {
        key == "stripe_load"
            || key == "stripe_evictions"
            // Cache bytes sum mirrors of *all* stripes, so the value
            // reflects global concurrent progress like the rows above.
            || key == "bytes_per_cached_schema"
            || key.starts_with("result_cache_")
            || key.starts_with("store_")
    };
    let mut out = String::from("OK STATS");
    for tok in rest.split_whitespace() {
        if tok == "%%" {
            continue;
        }
        let masked = match tok.split_once('=') {
            Some((key, _)) if volatile(key) => format!("{key}=<volatile>"),
            _ => tok.to_string(),
        };
        out.push(' ');
        out.push_str(&masked);
    }
    out.push_str("\n%%\n");
    out
}

/// Fires `reqs` from `threads` workers against `state` (work-stealing
/// over a shared counter, so interleavings vary run to run), tagging
/// each request with its index; returns the responses by request index.
fn run_concurrent(state: &ServiceState, reqs: &[Request], threads: usize) -> Vec<String> {
    let next = AtomicUsize::new(0);
    let mut responses: Vec<String> = vec![String::new(); reqs.len()];
    let slots: Vec<std::sync::Mutex<&mut String>> =
        responses.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= reqs.len() {
                    break;
                }
                let resp = state.handle_tagged(&reqs[i], Some(i as u64)).encode();
                **slots[i].lock().unwrap() = resp;
            });
        }
    });
    responses
}

fn check_concurrent_matches_replay(config: ServiceConfig, threads: usize) {
    let reqs = workload();
    let state = ServiceState::new(config.clone());
    let concurrent = run_concurrent(&state, &reqs, threads);
    let logs = state.stripe_logs();
    assert_eq!(
        logs.iter().map(Vec::len).sum::<usize>(),
        reqs.len(),
        "every request must be logged exactly once"
    );

    // Replay: a fresh state processes each stripe's requests in the
    // exact order the concurrent run linearised them. Stripes share no
    // state, so replaying stripe by stripe is a faithful serialisation.
    let replay_state = ServiceState::new(config);
    for log in &logs {
        for &tag in log {
            let i = tag as usize;
            let replayed = replay_state.handle(&reqs[i]).encode();
            assert_eq!(
                mask_volatile(&replayed),
                mask_volatile(&concurrent[i]),
                "request {i} ({:?}) diverged from its replay",
                reqs[i].class
            );
        }
    }
}

#[test]
fn concurrent_responses_equal_single_threaded_replay() {
    check_concurrent_matches_replay(ServiceConfig::default(), 8);
}

#[test]
fn single_stripe_full_contention_still_replays_exactly() {
    // One stripe = one DecompCache shared by every schema and thread:
    // the strongest same-cache contention case.
    check_concurrent_matches_replay(
        ServiceConfig {
            stripes: 1,
            ..ServiceConfig::default()
        },
        8,
    );
}

#[test]
fn eviction_churn_under_concurrency_replays_exactly() {
    // Capacity 2 with six schemas per stripe bank: concurrent requests
    // continuously evict each other's warm state. Responses must still
    // be exactly the replay's (evicted entries recompute cold with
    // identical answers).
    check_concurrent_matches_replay(
        ServiceConfig {
            stripes: 2,
            cache_capacity: 2,
            ..ServiceConfig::default()
        },
        8,
    );
}
