//! Pipelining correctness: a connection that writes many frames before
//! reading anything must get exactly the bytes a lockstep
//! one-request-at-a-time session gets, in request order — for mixed
//! single classes, BATCH frames, mid-pipeline deadline TIMEOUTs, and
//! mid-pipeline BUSY sheds.
//!
//! Every comparison runs the pipelined and the sequential session
//! against **separate servers with identical fresh state** and one
//! worker, so both sides process requests in the same order and the
//! cache history (warm paths, memo hits, counters) is the same on both.
//! Under more workers the responses may legitimately differ in which
//! warm path produced them — that surface is covered by
//! `service_props.rs`; this suite pins the transport: decoding frames
//! incrementally off a shared byte stream, fanning them through the
//! queue, and flushing responses strictly in request order must not
//! change a single byte.

use softhw_hypergraph::{named, render_hypergraph};
use softhw_service::{
    read_frame, BatchRequest, EvalKind, Request, RequestClass, Response, ServeOptions, Server,
    ServiceConfig, ServiceState,
};
use std::io::{BufReader, Write as _};
use std::net::TcpStream;

/// Encoded frames for a mixed-class session: every single class the
/// wire knows (STATS included — with one worker its counters evolve
/// identically on both sides) plus BATCH frames, two rounds so warm
/// responses are compared too.
fn mixed_session() -> Vec<String> {
    let schemas: Vec<String> = [
        named::h2(),
        named::cycle(5),
        named::cycle(6),
        named::grid(3, 3),
        named::triangle_star(3),
    ]
    .iter()
    .map(render_hypergraph)
    .collect();
    let classes = [
        RequestClass::Shw,
        RequestClass::ShwLeq(1),
        RequestClass::ShwLeq(2),
        RequestClass::Hw,
        RequestClass::HwLeq(2),
        RequestClass::Best(EvalKind::Trivial, 2),
        RequestClass::Stats,
        RequestClass::Hello,
    ];
    let mut frames = Vec::new();
    for _ in 0..2 {
        for schema in &schemas {
            for class in classes {
                frames.push(Request::new(class, schema.clone()).encode());
            }
            frames.push(
                BatchRequest::new(vec![
                    Request::new(RequestClass::Shw, schema.clone()),
                    Request::new(RequestClass::HwLeq(2), schema.clone()),
                    Request::new(RequestClass::ShwLeq(1), schema.clone()),
                ])
                .encode(),
            );
        }
    }
    frames
}

fn one_worker_server(queue_depth: usize) -> (Server, std::net::SocketAddr) {
    let state = ServiceState::new(ServiceConfig::default());
    let server = Server::bind(
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            max_conns: Some(1),
            queue_depth,
        },
        state,
    )
    .expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    (server, addr)
}

/// Sends every frame, then reads every response: the whole session is
/// in flight at once.
fn run_pipelined(addr: std::net::SocketAddr, frames: &[String]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let burst: String = frames.iter().map(String::as_str).collect();
    stream.write_all(burst.as_bytes()).expect("write burst");
    read_session(&mut stream, frames.len())
}

/// Lockstep reference: one frame, one response, repeat.
fn run_sequential(addr: std::net::SocketAddr, frames: &[String]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut out = Vec::new();
    for frame in frames {
        stream.write_all(frame.as_bytes()).expect("write frame");
        let lines = read_frame(&mut reader).expect("read").expect("frame");
        out.push(reencode(lines));
    }
    out
}

fn read_session(stream: &mut TcpStream, n: usize) -> Vec<String> {
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    (0..n)
        .map(|_| reencode(read_frame(&mut reader).expect("read").expect("frame")))
        .collect()
}

/// Re-joins a decoded frame into its canonical byte form (`read_frame`
/// already un-stuffed it; responses never need stuffing back).
fn reencode(lines: Vec<String>) -> String {
    let mut s = String::new();
    for l in &lines {
        s.push_str(l);
        s.push('\n');
    }
    s.push_str("%%\n");
    s
}

/// Masks the one STATS row that *measures pipelining itself*
/// (`pipelined_depth` is the high-water mark of in-flight requests, so
/// it reads 1 on the lockstep side by construction). Every other byte
/// of every frame is compared exactly.
fn mask_depth(encoded: &str) -> String {
    let Some(rest) = encoded.strip_prefix("OK STATS") else {
        return encoded.to_string();
    };
    let mut out = String::from("OK STATS");
    for tok in rest.split_whitespace() {
        if tok == "%%" {
            continue;
        }
        match tok.split_once('=') {
            Some(("pipelined_depth", _)) => out.push_str(" pipelined_depth=<masked>"),
            _ => {
                out.push(' ');
                out.push_str(tok);
            }
        }
    }
    out.push_str("\n%%\n");
    out
}

#[test]
fn pipelined_mixed_session_is_byte_identical_to_sequential() {
    let frames = mixed_session();
    let (pipe_server, pipe_addr) = one_worker_server(2 * frames.len());
    let (seq_server, seq_addr) = one_worker_server(2 * frames.len());
    let frames_ref = &frames;
    let (piped, sequential) = std::thread::scope(|scope| {
        let p = scope.spawn(move || run_pipelined(pipe_addr, frames_ref));
        let s = scope.spawn(move || run_sequential(seq_addr, frames_ref));
        pipe_server.run().expect("pipelined server");
        seq_server.run().expect("sequential server");
        (
            p.join().expect("pipelined client"),
            s.join().expect("sequential client"),
        )
    });
    assert_eq!(piped.len(), sequential.len());
    for (i, (p, s)) in piped.iter().zip(&sequential).enumerate() {
        assert_eq!(
            mask_depth(p),
            mask_depth(s),
            "response {i} diverged (frame: {:?})",
            frames[i]
        );
    }
}

#[test]
fn mid_pipeline_timeout_matches_sequential() {
    // The middle request carries a deadline no cold k=2 sweep on the
    // 24x24 grid can meet: both sessions must answer OK, TIMEOUT, OK
    // with identical bytes, and the pipelined connection must keep
    // serving past the expiry.
    let heavy = render_hypergraph(&named::grid(24, 24));
    let light = render_hypergraph(&named::h2());
    let mut doomed = Request::new(RequestClass::ShwLeq(2), heavy);
    doomed.deadline_ms = Some(50);
    let frames = vec![
        Request::new(RequestClass::Shw, light.clone()).encode(),
        doomed.encode(),
        Request::new(RequestClass::Shw, light).encode(),
    ];
    let (pipe_server, pipe_addr) = one_worker_server(frames.len());
    let (seq_server, seq_addr) = one_worker_server(frames.len());
    let frames_ref = &frames;
    let (piped, sequential) = std::thread::scope(|scope| {
        let p = scope.spawn(move || run_pipelined(pipe_addr, frames_ref));
        let s = scope.spawn(move || run_sequential(seq_addr, frames_ref));
        pipe_server.run().expect("pipelined server");
        seq_server.run().expect("sequential server");
        (
            p.join().expect("pipelined client"),
            s.join().expect("sequential client"),
        )
    });
    assert_eq!(piped, sequential);
    let timeout_lines: Vec<String> = piped[1].lines().map(str::to_string).collect();
    assert!(
        matches!(
            Response::decode(&timeout_lines[..timeout_lines.len() - 1]),
            Ok(Response::Timeout)
        ),
        "expected a TIMEOUT in slot 1, got {:?}",
        piped[1]
    );
}

#[test]
fn mid_pipeline_busy_shed_lands_in_its_slot() {
    // One worker, a queue of one: while the worker sits on a slow
    // deadline-bounded solve, a burst of four more requests decodes —
    // one queues, the rest shed BUSY *in their pipeline slots*. The
    // requests around the sheds still answer exactly like a sequential
    // session of the same surviving requests, and the connection stays
    // open for a post-shed request.
    let heavy = render_hypergraph(&named::grid(24, 24));
    let light = render_hypergraph(&named::h2());
    let mut slow = Request::new(RequestClass::ShwLeq(2), heavy);
    slow.deadline_ms = Some(400);
    let light_req = Request::new(RequestClass::Shw, light);

    let state = ServiceState::new(ServiceConfig::default());
    let server = Server::bind(
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            max_conns: Some(1),
            queue_depth: 1,
        },
        state,
    )
    .expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let slow_frame = slow.encode();
    let light_frame = light_req.encode();
    let client = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(slow_frame.as_bytes()).expect("write slow");
        // Give the loop time to hand the slow solve to the worker.
        std::thread::sleep(std::time::Duration::from_millis(150));
        let burst = light_frame.repeat(4);
        stream.write_all(burst.as_bytes()).expect("write burst");
        let mut got = read_session(&mut stream, 5);
        // The shed slots answered instantly; once the worker frees up,
        // the same request must succeed on this same connection.
        stream
            .write_all(light_frame.as_bytes())
            .expect("write post-shed");
        got.extend(read_session(&mut stream, 1));
        got
    });
    server.run().expect("server run");
    let got = client.join().expect("client");

    let decode = |s: &String| {
        let lines: Vec<String> = s.lines().map(str::to_string).collect();
        Response::decode(&lines[..lines.len() - 1]).expect("decode")
    };
    assert!(
        matches!(decode(&got[0]), Response::Timeout),
        "slot 0: {:?}",
        got[0]
    );
    assert!(
        matches!(decode(&got[1]), Response::Width { width: 2, .. }),
        "slot 1 (queued): {:?}",
        got[1]
    );
    for (i, slot) in got[2..5].iter().enumerate() {
        assert!(
            matches!(decode(slot), Response::Busy { .. }),
            "slot {} should be BUSY: {slot:?}",
            i + 2
        );
    }
    assert_eq!(
        got[5], got[1],
        "the post-shed retry must answer byte-identically to the queued success"
    );
}
