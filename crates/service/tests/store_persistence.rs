//! The acceptance properties of the persistent decomposition store at
//! the service level:
//!
//! 1. restarting a store-backed service answers a replayed request set
//!    **byte-identically** to the pre-restart run, with store /
//!    result-cache hits reported in `STATS`;
//! 2. a corrupted store — random bit flips anywhere in the file —
//!    degrades to a cold recompute with **identical answers**, never a
//!    panic and never a trusted-but-wrong response;
//! 3. a semantically stale record (valid checksum, witness that does
//!    not decompose the schema) is rejected by re-validation and
//!    recomputed.

use softhw_core::td::TreeDecomposition;
use softhw_hypergraph::{named, render_hypergraph, BitSet};
use softhw_service::{
    EvalKind, Request, RequestClass, Response, ServiceConfig, ServiceState, TdFrame,
};
use softhw_store::{ClassKey, FrameRef, PutAnswer, Store};
use std::path::PathBuf;

struct TempStore {
    path: PathBuf,
}

impl TempStore {
    fn new(name: &str) -> TempStore {
        let path = std::env::temp_dir().join(format!(
            "softhw-service-{}-{name}-{:?}.store",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        TempStore { path }
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// The replayed request set: several schemas, all cacheable classes.
fn workload() -> Vec<Request> {
    let schemas: Vec<String> = [
        named::h2(),
        named::cycle(5),
        named::cycle(6),
        named::grid(3, 3),
    ]
    .iter()
    .map(render_hypergraph)
    .collect();
    let classes = [
        RequestClass::Shw,
        RequestClass::ShwLeq(1),
        RequestClass::ShwLeq(2),
        RequestClass::Hw,
        RequestClass::HwLeq(2),
        RequestClass::Best(EvalKind::Trivial, 2),
        RequestClass::Best(EvalKind::ConCov, 2),
        RequestClass::Best(EvalKind::Shallow(1), 2),
    ];
    let mut reqs = Vec::new();
    for schema in &schemas {
        for class in classes {
            reqs.push(Request::new(class, schema.clone()));
        }
    }
    reqs
}

fn run_all(state: &ServiceState, reqs: &[Request]) -> Vec<String> {
    reqs.iter().map(|r| state.handle(r).encode()).collect()
}

fn stats_field(state: &ServiceState, field: &str) -> Option<String> {
    let resp = state.handle(&Request::new(
        RequestClass::Stats,
        render_hypergraph(&named::h2()),
    ));
    match resp {
        Response::Stats { fields } => fields
            .iter()
            .find(|(k, _)| k == field)
            .map(|(_, v)| v.clone()),
        other => panic!("unexpected response {other:?}"),
    }
}

#[test]
fn restart_replays_byte_identically_with_store_hits() {
    let tmp = TempStore::new("restart");
    let reqs = workload();
    let reference = {
        let state =
            ServiceState::open_store(ServiceConfig::default(), &tmp.path).expect("open store");
        let out = run_all(&state, &reqs);
        assert!(state.sync_store());
        out
    }; // state dropped: persister joined, log durable
       // Restart 1: default warm start. Every response must be
       // byte-identical, and STATS must report persisted state serving the
       // traffic (warm-started results + result-cache hits).
    let state = ServiceState::open_store(ServiceConfig::default(), &tmp.path).expect("reopen");
    assert!(state.has_store());
    let replayed = run_all(&state, &reqs);
    assert_eq!(reference, replayed, "restart changed a response");
    let warmed: u64 = stats_field(&state, "store_warmed")
        .unwrap()
        .parse()
        .unwrap();
    assert!(warmed > 0, "warm start preloaded nothing");
    let rc_hits = stats_field(&state, "result_cache_hits").unwrap();
    assert!(
        rc_hits.split(',').any(|v| v != "0"),
        "no result-cache hits reported: {rc_hits}"
    );
    assert_eq!(
        stats_field(&state, "store_recovered_bytes").as_deref(),
        Some("0")
    );
    drop(state);
    // Restart 2: warm start disabled, so every request exercises the
    // store-probe path instead — still byte-identical, with store hits.
    let cold_config = ServiceConfig {
        warm_start: 0,
        ..ServiceConfig::default()
    };
    let state = ServiceState::open_store(cold_config, &tmp.path).expect("reopen cold");
    let replayed = run_all(&state, &reqs);
    assert_eq!(reference, replayed, "cold-warm restart changed a response");
    let hits: u64 = stats_field(&state, "store_hits").unwrap().parse().unwrap();
    assert_eq!(
        hits,
        reqs.len() as u64,
        "every request should have been served from the store"
    );
}

#[test]
fn corrupted_store_degrades_to_cold_recompute_with_identical_answers() {
    let tmp = TempStore::new("corrupt");
    let reqs = workload();
    // Reference responses from a storeless state (pure solver answers).
    let reference = run_all(&ServiceState::new(ServiceConfig::default()), &reqs);
    // Populate the store.
    {
        let state =
            ServiceState::open_store(ServiceConfig::default(), &tmp.path).expect("open store");
        let served = run_all(&state, &reqs);
        assert_eq!(reference, served, "store-backed first run must match");
        assert!(state.sync_store());
    }
    let clean = std::fs::read(&tmp.path).expect("read store file");
    // Deterministic pseudo-random flips across the whole file (magic
    // included): the service must never panic, never serve a wrong
    // byte, and report the degradation in STATS.
    let mut seed = 0x9e3779b97f4a7c15u64;
    for trial in 0..12 {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let byte = (seed >> 16) as usize % clean.len();
        let bit = (seed >> 56) % 8;
        let mut corrupt = clean.clone();
        corrupt[byte] ^= 1 << bit;
        std::fs::write(&tmp.path, &corrupt).expect("write corrupt store");
        let state =
            ServiceState::open_store(ServiceConfig::default(), &tmp.path).expect("open corrupt");
        let served = run_all(&state, &reqs);
        assert_eq!(
            reference, served,
            "trial {trial}: corruption at byte {byte} changed an answer"
        );
    }
}

#[test]
fn stale_records_are_rejected_and_recomputed() {
    let tmp = TempStore::new("stale");
    let h_text = render_hypergraph(&named::cycle(6));
    let h = softhw_hypergraph::parse_hypergraph(&h_text).unwrap();
    // Craft a checksum-valid but semantically wrong record: a "witness"
    // that is just one undersized bag, under the exact-shw key, claiming
    // width 1.
    {
        let mut store = Store::open(&tmp.path).expect("open");
        let fake = TreeDecomposition::new(BitSet::from_iter(h.num_vertices(), [0, 1]));
        let frame = TdFrame::from_td(&fake, h.num_vertices());
        store
            .put(
                &h,
                ClassKey::Shw,
                &[],
                PutAnswer::Width {
                    width: 1,
                    frame: FrameRef {
                        universe: frame.universe,
                        snapshot: &frame.snapshot,
                        nodes: &frame.nodes,
                    },
                },
            )
            .expect("put fake");
        store.sync().expect("sync");
    }
    let reference = ServiceState::new(ServiceConfig::default())
        .handle(&Request::new(RequestClass::Shw, h_text.clone()))
        .encode();
    let state = ServiceState::open_store(ServiceConfig::default(), &tmp.path).expect("open");
    let served = state
        .handle(&Request::new(RequestClass::Shw, h_text.clone()))
        .encode();
    assert_eq!(reference, served, "stale witness must not be served");
    let invalid: u64 = stats_field(&state, "store_invalid")
        .unwrap()
        .parse()
        .unwrap();
    assert!(invalid >= 1, "rejection must be reported");
    // The cold recompute was persisted, superseding the stale record:
    // after a sync + restart the store now serves the *correct* answer.
    assert!(state.sync_store());
    drop(state);
    let state = ServiceState::open_store(
        ServiceConfig {
            warm_start: 0,
            ..ServiceConfig::default()
        },
        &tmp.path,
    )
    .expect("reopen");
    let served = state
        .handle(&Request::new(RequestClass::Shw, h_text))
        .encode();
    assert_eq!(reference, served);
    let hits: u64 = stats_field(&state, "store_hits").unwrap().parse().unwrap();
    assert_eq!(hits, 1, "the superseding record should now hit");
}

#[test]
fn warm_start_pins_hot_schemas() {
    let tmp = TempStore::new("pin");
    let reqs = workload();
    {
        let state =
            ServiceState::open_store(ServiceConfig::default(), &tmp.path).expect("open store");
        run_all(&state, &reqs);
        assert!(state.sync_store());
    }
    // Warm-started stripes report pinned schemas; with pinning disabled
    // they do not (and answers are unchanged either way).
    let pinned_state =
        ServiceState::open_store(ServiceConfig::default(), &tmp.path).expect("reopen");
    let pinned: u64 = stats_field(&pinned_state, "pinned")
        .unwrap()
        .parse()
        .unwrap();
    assert!(pinned >= 1, "the H2 stripe should hold a pinned schema");
    let replayed = run_all(&pinned_state, &reqs);
    drop(pinned_state);
    let unpinned_state = ServiceState::open_store(
        ServiceConfig {
            pin_warm: false,
            ..ServiceConfig::default()
        },
        &tmp.path,
    )
    .expect("reopen unpinned");
    assert_eq!(stats_field(&unpinned_state, "pinned").as_deref(), Some("0"));
    assert_eq!(replayed, run_all(&unpinned_state, &reqs));
}
