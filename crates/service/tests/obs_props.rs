//! Observability must be a pure observer: a server with tracing,
//! histograms, and the slow-query ring fully enabled (`--slow-ms 0`
//! records a span tree for *every* request) must answer byte-for-byte
//! identically to a twin server with observability disabled.
//!
//! Same twin-server idiom as `pipeline_props.rs`: each side gets its
//! own fresh server with one worker so request order and cache history
//! (warm paths, memo hits, counters) match by construction. Nothing is
//! masked — STATS rows are fed by the same request-path counters and
//! cache mirrors on both sides, and the histogram/slow-ring state only
//! surfaces through `METRICS` / `STATS SLOW`, which this session never
//! sends (their payloads legitimately differ between the twins).

use softhw_hypergraph::{named, render_hypergraph};
use softhw_service::{
    read_frame, BatchRequest, EvalKind, Request, RequestClass, ServeOptions, Server,
    ServiceConfig, ServiceState,
};
use std::io::{BufReader, Write as _};
use std::net::TcpStream;

/// Encoded frames for a mixed-class session: every answer-bearing
/// class plus STATS, HELLO, and BATCH, two rounds so warm responses
/// are compared too.
fn mixed_session() -> Vec<String> {
    let schemas: Vec<String> = [
        named::h2(),
        named::cycle(5),
        named::cycle(6),
        named::grid(3, 3),
        named::triangle_star(3),
    ]
    .iter()
    .map(render_hypergraph)
    .collect();
    let classes = [
        RequestClass::Shw,
        RequestClass::ShwLeq(1),
        RequestClass::ShwLeq(2),
        RequestClass::Hw,
        RequestClass::HwLeq(2),
        RequestClass::Best(EvalKind::Trivial, 2),
        RequestClass::Stats,
        RequestClass::Hello,
    ];
    let mut frames = Vec::new();
    for _ in 0..2 {
        for schema in &schemas {
            for class in classes {
                frames.push(Request::new(class, schema.clone()).encode());
            }
            frames.push(
                BatchRequest::new(vec![
                    Request::new(RequestClass::Shw, schema.clone()),
                    Request::new(RequestClass::HwLeq(2), schema.clone()),
                    Request::new(RequestClass::ShwLeq(1), schema.clone()),
                ])
                .encode(),
            );
        }
    }
    frames
}

fn one_worker_server(config: ServiceConfig, queue_depth: usize) -> (Server, std::net::SocketAddr) {
    let state = ServiceState::new(config);
    let server = Server::bind(
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            max_conns: Some(1),
            queue_depth,
        },
        state,
    )
    .expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    (server, addr)
}

/// Observability fully on: per-request traces feed the slow-query ring
/// unconditionally (`slow_ms == 0` means every request is "slow").
fn observed_config() -> ServiceConfig {
    ServiceConfig {
        obs_enabled: true,
        slow_ms: Some(0),
        ..ServiceConfig::default()
    }
}

fn blind_config() -> ServiceConfig {
    ServiceConfig {
        obs_enabled: false,
        slow_ms: None,
        ..ServiceConfig::default()
    }
}

fn run_pipelined(addr: std::net::SocketAddr, frames: &[String]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let burst: String = frames.iter().map(String::as_str).collect();
    stream.write_all(burst.as_bytes()).expect("write burst");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    (0..frames.len())
        .map(|_| reencode(read_frame(&mut reader).expect("read").expect("frame")))
        .collect()
}

fn reencode(lines: Vec<String>) -> String {
    let mut s = String::new();
    for l in &lines {
        s.push_str(l);
        s.push('\n');
    }
    s.push_str("%%\n");
    s
}

#[test]
fn observed_server_is_byte_identical_to_blind_twin() {
    let frames = mixed_session();
    let (obs_server, obs_addr) = one_worker_server(observed_config(), 2 * frames.len());
    let (blind_server, blind_addr) = one_worker_server(blind_config(), 2 * frames.len());
    let frames_ref = &frames;
    let (observed, blind) = std::thread::scope(|scope| {
        let o = scope.spawn(move || run_pipelined(obs_addr, frames_ref));
        let b = scope.spawn(move || run_pipelined(blind_addr, frames_ref));
        let (_, obs_state) = obs_server.run_state().expect("observed server");
        blind_server.run().expect("blind server");
        // The observed side really was observing: every request left a
        // span tree in the slow ring (`slow_ms == 0`).
        assert!(
            !obs_state.slow_log().is_empty(),
            "slow ring must have recorded traces with --slow-ms 0"
        );
        (
            o.join().expect("observed client"),
            b.join().expect("blind client"),
        )
    });
    assert_eq!(observed.len(), blind.len());
    for (i, (o, b)) in observed.iter().zip(&blind).enumerate() {
        assert_eq!(o, b, "response {i} diverged (frame: {:?})", frames[i]);
    }
}

#[test]
fn observed_state_answers_match_blind_state_directly() {
    // Handler-level twin (no sockets): the same request sequence
    // against two fresh states, one observed and one blind, serially.
    let schemas: Vec<String> = [named::h2(), named::cycle(5), named::grid(3, 3)]
        .iter()
        .map(render_hypergraph)
        .collect();
    let classes = [
        RequestClass::Shw,
        RequestClass::ShwLeq(2),
        RequestClass::Hw,
        RequestClass::Best(EvalKind::ConCov, 2),
        RequestClass::Stats,
    ];
    let observed = ServiceState::new(observed_config());
    let blind = ServiceState::new(blind_config());
    for _ in 0..2 {
        for schema in &schemas {
            for class in classes {
                let req = Request::new(class, schema.clone());
                assert_eq!(
                    observed.handle(&req).encode(),
                    blind.handle(&req).encode(),
                    "{class:?} diverged between observed and blind state"
                );
            }
        }
    }
    assert!(
        !observed.slow_log().is_empty(),
        "observed state must have recorded span trees"
    );
}
