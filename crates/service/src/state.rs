//! Request handling against a striped cross-query cache, fronted by an
//! exact result cache and (optionally) the persistent decomposition
//! store.
//!
//! The state the service shares across connections is a bank of
//! [`DecompCache`]s ("stripes"), each behind its own mutex. A request's
//! schema is parsed, hashed with [`structural_hash`], and routed to
//! stripe `hash mod stripes`: requests over the *same* schema always
//! meet the same warm cache (index, prepared instances,
//! [`IncrementalSweep`](softhw_core::IncrementalSweep) state, width
//! decisions), while requests over different schemas almost always run
//! concurrently on different stripes. Within one stripe the mutex
//! serialises handlers, and every cached entry point is deterministic,
//! so the response to a request depends only on the sequence of
//! requests its stripe processed before it — which is what the
//! concurrency property test replays and checks, response for response.
//!
//! Layered in front of the solver caches (all consulted under the same
//! stripe lock, so the determinism argument is unchanged):
//!
//! 1. a per-stripe **result cache** keyed by `(structural hash,
//!    canonical digest, request class)`, holding fully-formed
//!    [`Response`]s — a repeated request is a hash probe, no solver
//!    work at all;
//! 2. with `--store`, the **persistent store**
//!    ([`softhw_store::Store`]): misses probe the disk-backed index,
//!    and every persisted witness is **re-validated against the
//!    schema** before it is served — a stale or corrupt store entry is
//!    treated as a miss and recomputed cold, byte-identical. Fresh
//!    results are persisted through a **write-behind channel** to a
//!    dedicated thread that batches fsyncs off the request path.
//!    At boot, [`ServiceState::with_store`] **warm-starts** the stripe
//!    caches from the hottest stored schemas and *pins* them
//!    ([`DecompCache::pin`]) so eviction storms cannot thrash the head
//!    of the traffic distribution.
//!
//! Handlers never panic on request content: schema errors, blown
//! generation limits, and internal inconsistencies (degraded to cold
//! recomputes inside [`DecompCache`]) all map to `ERR` responses.

use crate::wire::{BatchRequest, BodyFormat, EvalKind, Request, RequestClass, Response, TdFrame};
use softhw_core::constraints::{ConCov, ShallowCyc, Trivial};
use softhw_core::ctd_opt::best_on;
use softhw_core::error::DecompError;
use softhw_core::ghd::Ghd;
use softhw_core::soft::{soft_bags_with, SoftLimits};
use softhw_core::{Budget, DecompCache, SolveSpec, Solved};
use softhw_hypergraph::cache::canonical_form;
use softhw_hypergraph::fxhash::hash_u64s;
use softhw_hypergraph::{parse_hypergraph, stats, FxHashMap, Hypergraph};
use softhw_obs::{stage, Histogram, SlowEntry, SlowRing};
use softhw_store::{
    schema_digest, ClassKey, FrameOwned, FrameRef, HitAnswer, PutAnswer, Store, StoreHit,
};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// Tuning knobs of a [`ServiceState`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Number of cache stripes (concurrently lockable cache shards).
    pub stripes: usize,
    /// Per-stripe [`DecompCache`] capacity (structurally distinct
    /// schemas before LRU eviction).
    pub cache_capacity: usize,
    /// Per-stripe result-cache capacity (cached whole responses; `0`
    /// disables the layer).
    pub result_cache_capacity: usize,
    /// Candidate-generation guards applied to every request.
    pub limits: SoftLimits,
    /// Largest schema (edge count) a request may carry.
    pub max_edges: usize,
    /// How many of the store's hottest schemas to preload at boot
    /// (ignored without a store).
    pub warm_start: usize,
    /// Pin warm-started schemas in their stripe caches so LRU eviction
    /// cannot push them out.
    pub pin_warm: bool,
    /// Disable the reduce-before-solve pipeline (the `--no-reduce`
    /// escape hatch). Routing and `STATS` reduction rows are unaffected
    /// — only the solvers stop acting on the reduction.
    pub no_reduce: bool,
    /// Compute deadline applied to requests that carry no `DEADLINE`
    /// token of their own (`--default-deadline`); `None` means
    /// unbounded.
    pub default_deadline_ms: Option<u64>,
    /// Record per-request traces, per-class latency histograms, and
    /// per-stage duration histograms (the `METRICS` exposition). Off,
    /// requests skip every observability write; responses are
    /// byte-identical either way.
    pub obs_enabled: bool,
    /// Requests slower than this many milliseconds record their full
    /// span tree into the slow-query ring (`--slow-ms`; `0` records
    /// everything, `None` disables the ring).
    pub slow_ms: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            stripes: 8,
            cache_capacity: softhw_core::cache::DEFAULT_MAX_GRAPHS,
            result_cache_capacity: 1024,
            limits: SoftLimits::default(),
            max_edges: 100_000,
            warm_start: 64,
            pin_warm: true,
            no_reduce: false,
            default_deadline_ms: None,
            obs_enabled: true,
            slow_ms: None,
        }
    }
}

/// How many slow-query span trees the ring retains (oldest evicted
/// first; the total recorded count keeps growing past this).
const SLOW_RING_CAP: usize = 64;

/// Request classes the per-class latency histograms and
/// `softhw_requests_total` counters are keyed by, in exposition order.
const OBS_CLASSES: [&str; 10] = [
    "SHW", "SHW_LEQ", "HW", "HW_LEQ", "BEST", "STATS", "BATCH", "HELLO", "METRICS", "SLOW",
];

fn obs_class_index(name: &str) -> Option<usize> {
    OBS_CLASSES.iter().position(|c| *c == name)
}

/// Per-state observability registry: one latency histogram per request
/// class, one duration histogram per pipeline stage, batch-size and
/// pipeline-depth histograms, and the slow-query ring. Lives inside
/// [`ServiceState`] (not a global) so twin servers in one process —
/// the determinism property tests — cannot observe each other; the
/// only global is `softhw_obs`'s span fast-path gate.
struct ServiceObs {
    enabled: bool,
    slow_ms: Option<u64>,
    latency: [Histogram; OBS_CLASSES.len()],
    stages: Vec<Histogram>,
    batch_sizes: Histogram,
    pipeline_depths: Histogram,
    slow: Mutex<SlowRing>,
    /// Mints trace ids for entry points the event loop did not tag
    /// (embedded/test callers); the high bit separates them from
    /// loop-minted `(conn_id << 32) | seq` ids.
    trace_seq: AtomicU64,
}

impl ServiceObs {
    fn new(config: &ServiceConfig) -> ServiceObs {
        ServiceObs {
            enabled: config.obs_enabled,
            slow_ms: config.slow_ms,
            latency: std::array::from_fn(|_| Histogram::new()),
            stages: stage::ALL.iter().map(|_| Histogram::new()).collect(),
            batch_sizes: Histogram::new(),
            pipeline_depths: Histogram::new(),
            slow: Mutex::new(SlowRing::new(SLOW_RING_CAP)),
            trace_seq: AtomicU64::new(0),
        }
    }

    /// Begins a trace for one request on this worker thread. Returns
    /// whether this call owns the trace (a `BATCH` item running inside
    /// its batch's trace does not — its spans nest into the batch
    /// tree).
    fn begin(&self, trace: Option<u64>) -> bool {
        if !self.enabled || !softhw_obs::enabled() || softhw_obs::trace_active() {
            return false;
        }
        let id = trace
            .unwrap_or_else(|| self.trace_seq.fetch_add(1, Ordering::Relaxed) | (1u64 << 63));
        softhw_obs::begin_trace(id);
        true
    }

    fn observe_stage(&self, name: &str, micros: u64) {
        if !self.enabled {
            return;
        }
        if let Some(i) = stage::index_of(name) {
            if let Some(h) = self.stages.get(i) {
                h.observe(micros);
            }
        }
    }
}

/// The backoff hint (milliseconds) sent with `BUSY` responses — both
/// queue sheds and requests cancelled mid-flight by a draining server.
pub const BUSY_RETRY_MS: u64 = 100;

/// A bounded LRU of fully-formed responses, keyed by
/// `(structural hash, canonical digest, request class)`. Lives inside a
/// stripe, so its hit/miss history is as deterministic as the stripe's
/// request order.
struct ResultCache {
    capacity: usize,
    map: FxHashMap<(u64, u64, ClassKey), (u64, Response)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity,
            map: FxHashMap::default(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn get(&mut self, key: &(u64, u64, ClassKey)) -> Option<Response> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some((tick, resp)) => {
                *tick = self.tick;
                self.hits += 1;
                Some(resp.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: (u64, u64, ClassKey), resp: Response) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        self.map.insert(key, (self.tick, resp));
        if self.map.len() > self.capacity {
            // Amortised batch eviction: drop down to capacity minus an
            // eighth in one pass, so the O(n) sweep runs once per
            // capacity/8 inserts instead of per insert.
            let keep = self.capacity - self.capacity / 8;
            let mut ticks: Vec<u64> = self.map.values().map(|(t, _)| *t).collect();
            ticks.sort_unstable();
            let Some(&cutoff) = ticks.get(ticks.len().saturating_sub(keep)) else {
                return;
            };
            self.map.retain(|_, (t, _)| *t >= cutoff);
        }
    }
}

struct Stripe {
    cache: DecompCache,
    results: ResultCache,
    /// Tags of the requests this stripe processed, in lock order — the
    /// linearisation record the concurrency property test replays.
    log: Vec<u64>,
}

/// Whether a fresh response is a cacheable answer (vs. an error or
/// stats, which are never cached or persisted).
enum Persist {
    No,
    Yes,
}

/// A persistence message on the write-behind channel (the put payload
/// is boxed: it carries a whole schema + witness frame, and the
/// channel also ferries tiny flush requests).
enum PersistMsg {
    Put(Box<PutPayload>),
    Flush(mpsc::Sender<()>),
}

struct PutPayload {
    schema: Hypergraph,
    key: ClassKey,
    fields: Vec<(String, String)>,
    answer: OwnedAnswer,
}

enum OwnedAnswer {
    No,
    Yes(TdFrame),
    Width { width: usize, frame: TdFrame },
}

/// The store attachment: the shared store, its service-side counters,
/// and the write-behind persister thread. Dropping the handle closes
/// the channel, joins the persister (which drains and fsyncs first),
/// so a clean shutdown loses nothing that was handed to the channel.
struct StoreHandle {
    store: Arc<Mutex<Store>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Store entries that failed witness re-validation (served cold
    /// instead — never trusted).
    invalid: AtomicU64,
    /// Results preloaded into the caches at boot.
    warmed: AtomicU64,
    /// Write-behind puts that failed at the disk layer.
    put_errors: Arc<AtomicU64>,
    tx: Option<mpsc::Sender<PersistMsg>>,
    join: Option<JoinHandle<()>>,
}

impl Drop for StoreHandle {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the channel: persister drains + syncs
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// How many puts the persister applies between fsyncs when the channel
/// stays busy (it always syncs once its queue momentarily drains).
const FSYNC_BATCH: usize = 64;

fn lock_store(s: &Mutex<Store>) -> std::sync::MutexGuard<'_, Store> {
    s.lock().unwrap_or_else(PoisonError::into_inner)
}

fn frame_ref(f: &TdFrame) -> FrameRef<'_> {
    FrameRef {
        universe: f.universe,
        snapshot: &f.snapshot,
        nodes: &f.nodes,
    }
}

fn persister(store: Arc<Mutex<Store>>, rx: mpsc::Receiver<PersistMsg>, errors: Arc<AtomicU64>) {
    let mut dirty = 0usize;
    let apply = |msg: PersistMsg, dirty: &mut usize| match msg {
        PersistMsg::Put(put) => {
            let PutPayload {
                schema,
                key,
                fields,
                answer,
            } = *put;
            let result = match &answer {
                OwnedAnswer::No => lock_store(&store).put(&schema, key, &fields, PutAnswer::No),
                OwnedAnswer::Yes(frame) => {
                    lock_store(&store).put(&schema, key, &fields, PutAnswer::Yes(frame_ref(frame)))
                }
                OwnedAnswer::Width { width, frame } => lock_store(&store).put(
                    &schema,
                    key,
                    &fields,
                    PutAnswer::Width {
                        width: *width,
                        frame: frame_ref(frame),
                    },
                ),
            };
            match result {
                Ok(()) => *dirty += 1,
                Err(_) => {
                    errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        PersistMsg::Flush(ack) => {
            if sync_unlocked(&store).is_err() {
                errors.fetch_add(1, Ordering::Relaxed);
            }
            *dirty = 0;
            let _ = ack.send(());
        }
    };
    loop {
        // Block for the next message, then drain whatever else is
        // already queued: one fsync covers the whole batch.
        let Ok(first) = rx.recv() else { break };
        apply(first, &mut dirty);
        while dirty < FSYNC_BATCH {
            match rx.try_recv() {
                Ok(msg) => apply(msg, &mut dirty),
                Err(_) => break,
            }
        }
        if dirty > 0 {
            if sync_unlocked(&store).is_err() {
                errors.fetch_add(1, Ordering::Relaxed);
            }
            dirty = 0;
        }
    }
    // Channel closed (state dropped): final sync for durability.
    let _ = sync_unlocked(&store);
}

/// Fsyncs the store log *without* holding its lock: the handle clone is
/// taken under the lock (cheap), the disk flush happens outside it, so
/// request handlers probing the store index never queue behind an
/// in-progress fsync batch.
fn sync_unlocked(store: &Arc<Mutex<Store>>) -> io::Result<()> {
    let handle = lock_store(store).sync_handle()?;
    handle.sync_data()
}

/// Shared, thread-safe service state: the striped cache bank plus the
/// optional persistent store.
pub struct ServiceState {
    config: ServiceConfig,
    stripes: Vec<Mutex<Stripe>>,
    /// Requests routed per stripe (monotonic, updated outside the
    /// stripe locks — a cross-stripe *observability* counter, not part
    /// of any response determinism contract).
    stripe_load: Vec<AtomicU64>,
    /// Mirror of each stripe's `DecompCache` eviction counter, updated
    /// after every request so `STATS` can report all stripes without
    /// taking their locks.
    stripe_evictions: Vec<AtomicU64>,
    /// Mirrors of each stripe's result-cache hit/miss counters.
    stripe_result_hits: Vec<AtomicU64>,
    stripe_result_misses: Vec<AtomicU64>,
    /// Requests whose compute deadline expired (answered `TIMEOUT`).
    deadline_timeouts: AtomicU64,
    /// Requests shed before any work — queue-full `BUSY` responses
    /// (reported by the server via [`ServiceState::note_busy_shed`])
    /// plus requests cancelled mid-flight by a draining server.
    busy_sheds: AtomicU64,
    /// Connections currently open on the serving event loop (reported
    /// by the server via [`ServiceState::note_conn_opened`] /
    /// [`ServiceState::note_conn_closed`]).
    conns_active: AtomicU64,
    /// High-water mark of requests in flight on a single connection —
    /// how deep clients actually pipeline.
    pipelined_depth: AtomicU64,
    /// `BATCH` frames served (each counts once, however many items it
    /// carried).
    batch_requests: AtomicU64,
    /// Mirror of each stripe's approximate cache heap bytes, updated
    /// after every request (same pattern as `stripe_evictions`) so
    /// `STATS`/`METRICS` report memory without taking stripe locks.
    stripe_bytes: Vec<AtomicU64>,
    /// Mirror of each stripe's tracked-schema count.
    stripe_tracked: Vec<AtomicU64>,
    obs: ServiceObs,
    store: Option<StoreHandle>,
}

impl ServiceState {
    /// Fresh state under `config` (stripe count clamped to ≥ 1), no
    /// persistence.
    pub fn new(config: ServiceConfig) -> ServiceState {
        let n = config.stripes.max(1);
        let stripes = (0..n)
            .map(|_| {
                let mut cache = DecompCache::with_capacity(config.cache_capacity);
                cache.set_no_reduce(config.no_reduce);
                Mutex::new(Stripe {
                    cache,
                    results: ResultCache::new(config.result_cache_capacity),
                    log: Vec::new(),
                })
            })
            .collect();
        let obs = ServiceObs::new(&config);
        ServiceState {
            config,
            stripes,
            stripe_load: (0..n).map(|_| AtomicU64::new(0)).collect(),
            stripe_evictions: (0..n).map(|_| AtomicU64::new(0)).collect(),
            stripe_result_hits: (0..n).map(|_| AtomicU64::new(0)).collect(),
            stripe_result_misses: (0..n).map(|_| AtomicU64::new(0)).collect(),
            deadline_timeouts: AtomicU64::new(0),
            busy_sheds: AtomicU64::new(0),
            conns_active: AtomicU64::new(0),
            pipelined_depth: AtomicU64::new(0),
            batch_requests: AtomicU64::new(0),
            stripe_bytes: (0..n).map(|_| AtomicU64::new(0)).collect(),
            stripe_tracked: (0..n).map(|_| AtomicU64::new(0)).collect(),
            obs,
            store: None,
        }
    }

    /// State backed by an open [`Store`]: warm-starts the stripe caches
    /// from the hottest `config.warm_start` schemas (pinning them if
    /// `config.pin_warm`), then spawns the write-behind persister.
    pub fn with_store(config: ServiceConfig, mut store: Store) -> ServiceState {
        let mut state = ServiceState::new(config);
        let warmed = state.warm_start(&mut store);
        let put_errors = Arc::new(AtomicU64::new(0));
        let store = Arc::new(Mutex::new(store));
        let (tx, rx) = mpsc::channel();
        let join = {
            let store = Arc::clone(&store);
            let errors = Arc::clone(&put_errors);
            std::thread::spawn(move || persister(store, rx, errors))
        };
        state.store = Some(StoreHandle {
            store,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalid: AtomicU64::new(0),
            warmed: AtomicU64::new(warmed),
            put_errors,
            tx: Some(tx),
            join: Some(join),
        });
        state
    }

    /// Opens (or creates) the store at `path` — with torn-tail
    /// recovery — and builds a store-backed state over it.
    pub fn open_store(config: ServiceConfig, path: impl AsRef<Path>) -> io::Result<ServiceState> {
        Ok(ServiceState::with_store(config, Store::open(path)?))
    }

    /// True iff a persistent store is attached.
    pub fn has_store(&self) -> bool {
        self.store.is_some()
    }

    /// Blocks until every persistence message sent so far is applied
    /// and fsynced. Returns `false` without a store (or if the
    /// persister died). Tests and benchmarks use this to make "restart"
    /// points explicit; a dropping state flushes implicitly.
    pub fn sync_store(&self) -> bool {
        let Some(handle) = &self.store else {
            return false;
        };
        let Some(tx) = &handle.tx else { return false };
        let (ack_tx, ack_rx) = mpsc::channel();
        if tx.send(PersistMsg::Flush(ack_tx)).is_err() {
            return false;
        }
        ack_rx.recv().is_ok()
    }

    /// Preloads the hottest stored schemas: for each, the persisted
    /// responses (witnesses re-validated first) go into the routed
    /// stripe's result cache, width decisions are imported into its
    /// [`DecompCache`], and the schema is pinned. Returns how many
    /// results were preloaded.
    /// Locks the stripe `idx` routes to. `idx` is always
    /// `route_hash % stripes.len()` so it is in range by construction,
    /// but the request path must stay panic-free, so out-of-range
    /// degrades to `None` instead of indexing.
    fn lock_stripe(&self, idx: usize) -> Option<std::sync::MutexGuard<'_, Stripe>> {
        let stripe = self.stripes.get(idx)?;
        Some(stripe.lock().unwrap_or_else(PoisonError::into_inner))
    }

    fn warm_start(&mut self, store: &mut Store) -> u64 {
        let mut warmed = 0u64;
        for (hash, digest) in store.hottest(self.config.warm_start) {
            let Some(h) = store.schema_hypergraph(hash, digest) else {
                continue;
            };
            if softhw_store::schema_key(&h) != (hash, digest) {
                continue; // stored structure does not hash back: distrust it
            }
            let idx = (route_hash(&h) % self.stripes.len() as u64) as usize;
            let Some(mut stripe) = self.lock_stripe(idx) else {
                continue;
            };
            let mut any = false;
            for (key, hit) in store.results_for(hash, digest) {
                let Some(resp) = response_from_hit(&key, &hit, &h) else {
                    continue;
                };
                import_decisions(&mut stripe.cache, &h, &key, &resp);
                stripe.results.insert((hash, digest, key), resp);
                warmed += 1;
                any = true;
            }
            if any && self.config.pin_warm {
                stripe.cache.pin(hash);
            }
        }
        warmed
    }

    /// The configuration this state was created with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Number of stripes.
    pub fn num_stripes(&self) -> usize {
        self.stripes.len()
    }

    /// Per-stripe request-tag logs in processing (lock) order, for
    /// replay verification.
    pub fn stripe_logs(&self) -> Vec<Vec<u64>> {
        self.stripes
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).log.clone())
            .collect()
    }

    /// Handles one request end to end.
    pub fn handle(&self, req: &Request) -> Response {
        self.handle_tagged(req, None)
    }

    /// [`ServiceState::handle`], additionally recording `tag` in the
    /// routed stripe's processing log (under the same lock acquisition
    /// that serves the request).
    pub fn handle_tagged(&self, req: &Request, tag: Option<u64>) -> Response {
        self.handle_tagged_budgeted(req, tag, &self.request_budget(req))
    }

    /// The [`Budget`] a request runs under: its own `DEADLINE` token if
    /// present, else the server's `--default-deadline`, else an
    /// unbounded-but-cancellable budget. The deadline clock starts here
    /// — *before* the stripe lock is taken — so time spent queueing
    /// behind a slow neighbour counts against the request, exactly like
    /// queueing in the accept backlog would.
    pub fn request_budget(&self, req: &Request) -> Budget {
        match req.deadline_ms.or(self.config.default_deadline_ms) {
            Some(ms) => Budget::with_deadline(std::time::Duration::from_millis(ms)),
            None => Budget::cancellable(),
        }
    }

    /// Records a request shed by the server's bounded work queue (the
    /// `BUSY` fast path never reaches a handler, so the server reports
    /// it here for `STATS`).
    pub fn note_busy_shed(&self) {
        self.busy_sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection accepted by the server (`conns_active` in
    /// `STATS`).
    pub fn note_conn_opened(&self) {
        self.conns_active.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection closed by the server.
    pub fn note_conn_closed(&self) {
        // Saturating: a miscounting caller must not wrap to 2^64.
        let _ = self
            .conns_active
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                Some(n.saturating_sub(1))
            });
    }

    /// Records the number of requests in flight on one connection;
    /// `STATS` reports the high-water mark across all connections,
    /// `METRICS` the full depth histogram.
    pub fn note_pipeline_depth(&self, depth: u64) {
        self.pipelined_depth.fetch_max(depth, Ordering::Relaxed);
        if self.obs.enabled {
            self.obs.pipeline_depths.observe(depth);
        }
    }

    /// Records how long a decoded request waited in the ready-request
    /// queue before a worker picked it up (reported by the worker pool;
    /// atomic increments only).
    pub fn note_queue_wait(&self, micros: u64) {
        self.obs.observe_stage(stage::QUEUE_WAIT, micros);
    }

    /// Records how long a completed response dwelt in its connection's
    /// reorder buffer before it could be flushed in request order
    /// (reported by the event loop; atomic increments only — safe to
    /// call from the non-blocking loop).
    pub fn note_reorder_dwell(&self, micros: u64) {
        self.obs.observe_stage(stage::REORDER_DWELL, micros);
    }

    /// [`ServiceState::handle_tagged`] under a caller-supplied
    /// [`Budget`] — the server threads one per in-flight connection so
    /// a draining shutdown can cancel it.
    pub fn handle_tagged_budgeted(
        &self,
        req: &Request,
        tag: Option<u64>,
        budget: &Budget,
    ) -> Response {
        self.handle_traced(req, tag, budget, None)
    }

    /// [`ServiceState::handle_tagged_budgeted`] with an event-loop
    /// minted trace id. Every request funnels through here: the trace
    /// is begun and ended on this (worker) thread, the request's
    /// latency lands in its class histogram, each recorded span in its
    /// stage histogram, and a request slower than `--slow-ms` records
    /// its span tree into the slow-query ring.
    pub fn handle_traced(
        &self,
        req: &Request,
        tag: Option<u64>,
        budget: &Budget,
        trace: Option<u64>,
    ) -> Response {
        let started = Instant::now();
        let owns_trace = self.obs.begin(trace);
        let resp = self.handle_inner(req, tag, budget);
        self.finish_request(req.class.name(), started, owns_trace);
        resp
    }

    /// Folds one finished request into the observability registry; the
    /// mirror of [`ServiceState::handle_traced`]'s `begin`.
    fn finish_request(&self, class: &'static str, started: Instant, owns_trace: bool) {
        if !self.obs.enabled {
            return;
        }
        let total_us = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        if let Some(i) = obs_class_index(class) {
            if let Some(h) = self.obs.latency.get(i) {
                h.observe(total_us);
            }
        }
        if !owns_trace {
            return;
        }
        let Some(trace) = softhw_obs::end_trace() else {
            return;
        };
        for r in &trace.records {
            self.obs.observe_stage(r.stage, r.dur_us);
        }
        if self
            .obs
            .slow_ms
            .is_some_and(|ms| total_us >= ms.saturating_mul(1000))
        {
            let entry = SlowEntry {
                trace_id: trace.trace_id,
                class: class.to_string(),
                total_us,
                records: trace.records,
            };
            self.obs
                .slow
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(entry);
        }
    }

    fn handle_inner(&self, req: &Request, tag: Option<u64>, budget: &Budget) -> Response {
        if req.class == RequestClass::Hello {
            // Protocol handshake: no schema, no stripe, no budget.
            return Response::hello();
        }
        if req.class == RequestClass::Metrics {
            // Exposition of this state's registry: no schema, no stripe.
            return self.metrics_response();
        }
        if req.class == RequestClass::Slow {
            // Slow-query log dump: no schema, no stripe.
            return self.slow_response();
        }
        let h = match self.schema(req) {
            Ok(h) => h,
            Err(resp) => return resp,
        };
        let canon = canonical_form(&h);
        let hash = hash_u64s(&canon);
        let digest = schema_digest(&canon);
        let idx = (route_hash(&h) % self.stripes.len() as u64) as usize;
        if let Some(load) = self.stripe_load.get(idx) {
            load.fetch_add(1, Ordering::Relaxed);
        }
        let Some(mut stripe) = self.lock_stripe(idx) else {
            return Response::error("internal", "stripe routing out of range");
        };
        if let Some(tag) = tag {
            stripe.log.push(tag);
        }
        let resp = self.serve(req, &h, hash, digest, idx, &mut stripe, budget);
        // Mirror the stripe's counters into atomics so STATS handlers on
        // other stripes can report them without taking this lock.
        if let Some(c) = self.stripe_evictions.get(idx) {
            c.store(stripe.cache.stats().evictions, Ordering::Relaxed);
        }
        if let Some(c) = self.stripe_result_hits.get(idx) {
            c.store(stripe.results.hits, Ordering::Relaxed);
        }
        if let Some(c) = self.stripe_result_misses.get(idx) {
            c.store(stripe.results.misses, Ordering::Relaxed);
        }
        if let Some(c) = self.stripe_bytes.get(idx) {
            c.store(stripe.cache.approx_bytes(), Ordering::Relaxed);
        }
        if let Some(c) = self.stripe_tracked.get(idx) {
            c.store(stripe.cache.tracked_graphs() as u64, Ordering::Relaxed);
        }
        resp
    }

    /// The shared [`Budget`] a `BATCH` frame runs under: its `DEADLINE`
    /// token covers the *whole batch* (items drain it in order — once
    /// it trips, every remaining item that needs solver work answers
    /// `TIMEOUT`, while result-cache and store hits still serve, same
    /// as single requests).
    pub fn batch_budget(&self, batch: &BatchRequest) -> Budget {
        match batch.deadline_ms.or(self.config.default_deadline_ms) {
            Some(ms) => Budget::with_deadline(std::time::Duration::from_millis(ms)),
            None => Budget::cancellable(),
        }
    }

    /// Handles a `BATCH` frame: every item takes the full
    /// single-request path (routing, result cache, store, solvers) in
    /// item order, under one caller-supplied shared budget — so the
    /// sub-responses are byte-identical to sending the items as
    /// individual requests under budgets that trip at the same points.
    pub fn handle_batch(
        &self,
        batch: &BatchRequest,
        tag: Option<u64>,
        budget: &Budget,
    ) -> Response {
        self.handle_batch_traced(batch, tag, budget, None)
    }

    /// [`ServiceState::handle_batch`] with an event-loop minted trace
    /// id. The batch owns the trace; item spans nest into it, and each
    /// item still lands in its own class's latency histogram.
    pub fn handle_batch_traced(
        &self,
        batch: &BatchRequest,
        tag: Option<u64>,
        budget: &Budget,
        trace: Option<u64>,
    ) -> Response {
        let started = Instant::now();
        let owns_trace = self.obs.begin(trace);
        self.batch_requests.fetch_add(1, Ordering::Relaxed);
        if self.obs.enabled {
            self.obs.batch_sizes.observe(batch.items.len() as u64);
        }
        let responses = batch
            .items
            .iter()
            .map(|item| self.handle_tagged_budgeted(item, tag, budget))
            .collect();
        self.finish_request("BATCH", started, owns_trace);
        Response::Batch { responses }
    }

    /// Serves a request under its stripe lock: result cache, then
    /// store, then the solvers (persisting what they produce). Budget
    /// trips map to `TIMEOUT`/`BUSY` frames and are never cached or
    /// persisted; cache and store probes themselves run un-budgeted
    /// (they are hash lookups, and a warm answer an instant after the
    /// deadline is still the byte-identical right answer).
    #[allow(clippy::too_many_arguments)]
    fn serve(
        &self,
        req: &Request,
        h: &Hypergraph,
        hash: u64,
        digest: u64,
        idx: usize,
        stripe: &mut Stripe,
        budget: &Budget,
    ) -> Response {
        let key = class_key(req.class);
        if let Some(key) = key {
            let cached = {
                let _span = softhw_obs::span(stage::RESULT_CACHE);
                stripe.results.get(&(hash, digest, key))
            };
            if let Some(resp) = cached {
                return resp;
            }
            if let Some(handle) = &self.store {
                let _span = softhw_obs::span(stage::STORE_PROBE);
                let hit = handle
                    .store
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .get(hash, digest, &key);
                match hit {
                    Some(hit) => match response_from_hit(&key, &hit, h) {
                        Some(resp) => {
                            handle.hits.fetch_add(1, Ordering::Relaxed);
                            import_decisions(&mut stripe.cache, h, &key, &resp);
                            stripe.results.insert((hash, digest, key), resp.clone());
                            return resp;
                        }
                        None => {
                            // Stale/corrupt entry: never trusted. Fall
                            // through to a cold compute (whose fresh
                            // result supersedes the bad record).
                            handle.invalid.fetch_add(1, Ordering::Relaxed);
                        }
                    },
                    None => {
                        handle.misses.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        let (resp, persist) = {
            let _span = softhw_obs::span(stage::SOLVE);
            self.dispatch(req, h, idx, stripe, budget)
        };
        if let (Some(key), Persist::Yes) = (key, &persist) {
            if matches!(resp, Response::Width { .. } | Response::Decision { .. }) {
                stripe.results.insert((hash, digest, key), resp.clone());
                if let Some(handle) = &self.store {
                    if let (Some(tx), Some(msg)) = (&handle.tx, persist_msg(h, key, &resp)) {
                        let _ = tx.send(msg);
                    }
                }
            }
        }
        resp
    }

    /// Parses and validates the request's schema. HyperBench parse
    /// errors are positioned — `ERR parse <line>:<col>: <msg>` — so a
    /// client can point at the offending schema line instead of a raw
    /// byte offset.
    fn schema(&self, req: &Request) -> Result<Hypergraph, Response> {
        let h = match req.format {
            BodyFormat::HyperBench => parse_hypergraph(&req.body).map_err(|e| {
                let (line, col) = e.line_col(&req.body);
                Response::error("parse", format!("{line}:{col}: {}", e.message))
            })?,
            BodyFormat::Sql => {
                let q =
                    softhw_query::parse_sql(&req.body).map_err(|e| Response::error("parse", e))?;
                softhw_query::ast_hypergraph(&q).map_err(|e| Response::error("parse", e))?
            }
        };
        if h.num_edges() == 0 {
            return Err(Response::error("request", "empty schema"));
        }
        if h.num_edges() > self.config.max_edges {
            return Err(Response::error(
                "request",
                format!(
                    "schema has {} edges, limit is {}",
                    h.num_edges(),
                    self.config.max_edges
                ),
            ));
        }
        Ok(h)
    }

    fn dispatch(
        &self,
        req: &Request,
        h: &Hypergraph,
        idx: usize,
        stripe: &mut Stripe,
        budget: &Budget,
    ) -> (Response, Persist) {
        let cache = &mut stripe.cache;
        // Soft_{H,k} is invariant in k beyond |E(H)| (λ-subsets never
        // repeat edges), so clamp the *computation* width — an absurd
        // requested k must not size scratch pools.
        let clamp = |k: usize| k.min(h.num_edges());
        let persist = match class_key(req.class) {
            Some(_) => Persist::Yes,
            None => Persist::No,
        };
        // The four solver classes all funnel through the unified
        // [`DecompCache::solve`] entry point; only the response framing
        // differs per class.
        let spec = |spec: SolveSpec| {
            spec.with_limits(self.config.limits.clone())
                .with_budget(budget.clone())
        };
        let resp = match req.class {
            RequestClass::Shw => match cache.solve(h, &spec(SolveSpec::shw())) {
                Ok(Solved::ShwWidth(width, td)) => Response::Width {
                    class: "SHW".into(),
                    width,
                    td: TdFrame::from_td(&td, h.num_vertices()),
                },
                Ok(_) => Response::error("internal", "SHW spec yielded a mismatched variant"),
                Err(e) => self.decomp_error(e),
            },
            RequestClass::ShwLeq(k) => {
                if k == 0 {
                    return (
                        Response::error("request", "width must be >= 1"),
                        Persist::No,
                    );
                }
                match cache.solve(h, &spec(SolveSpec::shw_leq(clamp(k)))) {
                    Ok(Solved::ShwDecision(td)) => Response::Decision {
                        class: "SHW_LEQ".into(),
                        fields: Vec::new(),
                        k,
                        td: td.map(|td| TdFrame::from_td(&td, h.num_vertices())),
                    },
                    Ok(_) => {
                        Response::error("internal", "SHW_LEQ spec yielded a mismatched variant")
                    }
                    Err(e) => self.decomp_error(e),
                }
            }
            RequestClass::Hw => {
                // Reduce-aware sweep over the memoised decisions; an
                // input no width accepts degrades to an error, not a
                // panic (DecompCache::solve maps it to an internal ERR).
                match cache.solve(h, &spec(SolveSpec::hw())) {
                    Ok(Solved::HwWidth(width, ghd)) => Response::Width {
                        class: "HW".into(),
                        width,
                        td: TdFrame::from_td(&ghd.td, h.num_vertices()),
                    },
                    Ok(_) => Response::error("internal", "HW spec yielded a mismatched variant"),
                    Err(e) => self.decomp_error(e),
                }
            }
            RequestClass::HwLeq(k) => {
                if k == 0 {
                    return (
                        Response::error("request", "width must be >= 1"),
                        Persist::No,
                    );
                }
                match cache.solve(h, &spec(SolveSpec::hw_leq(clamp(k)))) {
                    Ok(Solved::HwDecision(ghd)) => Response::Decision {
                        class: "HW_LEQ".into(),
                        fields: Vec::new(),
                        k,
                        td: ghd.map(|g| TdFrame::from_td(&g.td, h.num_vertices())),
                    },
                    Ok(_) => {
                        Response::error("internal", "HW_LEQ spec yielded a mismatched variant")
                    }
                    Err(e) => self.decomp_error(e),
                }
            }
            RequestClass::Best(eval, k) => {
                if k == 0 {
                    return (
                        Response::error("request", "width must be >= 1"),
                        Persist::No,
                    );
                }
                // Candidate generation dominates BEST; bound it at stage
                // granularity (the in-stage ticks ride the budgeted
                // generation inside the solvers' other entry points).
                if let Err(e) = budget.check() {
                    return (self.decomp_error(e), Persist::No);
                }
                let bags = match soft_bags_with(h, clamp(k), &self.config.limits) {
                    Ok(bags) => bags,
                    Err(e) => return (self.decomp_error(e.into()), Persist::No),
                };
                if let Err(e) = budget.check() {
                    return (self.decomp_error(e), Persist::No);
                }
                let inst = cache.instance_for(h, &bags);
                let mut fields = vec![("eval".to_string(), eval.token())];
                let best = match eval {
                    EvalKind::Trivial => best_on(inst, &Trivial).map(|(td, ())| (td, None)),
                    EvalKind::ConCov => {
                        best_on(inst, &ConCov { k: clamp(k) }).map(|(td, ())| (td, None))
                    }
                    EvalKind::Shallow(d) => {
                        best_on(inst, &ShallowCyc { d }).map(|(td, cost)| (td, Some(cost)))
                    }
                };
                if let Some((_, Some(cost))) = &best {
                    fields.push(("cost".to_string(), cost.to_string()));
                }
                Response::Decision {
                    class: "BEST".into(),
                    fields,
                    k,
                    td: best.map(|(td, _)| TdFrame::from_td(&td, h.num_vertices())),
                }
            }
            RequestClass::Stats => self.stats_response(h, idx, stripe),
            // The three schema-free classes are served before schema
            // parsing in `handle_inner`; kept for match exhaustiveness.
            RequestClass::Hello => Response::hello(),
            RequestClass::Metrics => self.metrics_response(),
            RequestClass::Slow => self.slow_response(),
        };
        (resp, persist)
    }

    /// Assembles the `STATS` response: structural stats and the routed
    /// stripe's solver-cache counters (deterministic per stripe
    /// history), then the cross-stripe observability rows — per-stripe
    /// load, eviction counts, result-cache hit/miss — and, when a store
    /// is attached, the store hit/size rows. The frame stays
    /// backward-parseable: old clients read `key=value` fields
    /// generically and simply see more of them.
    fn stats_response(&self, h: &Hypergraph, idx: usize, stripe: &mut Stripe) -> Response {
        let s = stats::stats(h);
        let c = stripe.cache.stats();
        // What the reduce-before-solve pipeline does to this schema.
        // Reported identically with and without `--no-reduce` (the
        // reduction is computed either way; the flag only stops the
        // solvers from acting on it), so answers stay byte-comparable
        // across the two modes.
        let red = stripe.cache.reduction(h);
        let list = |counters: &[AtomicU64]| {
            counters
                .iter()
                .map(|a| a.load(Ordering::Relaxed).to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let mut fields = vec![
            ("vertices".to_string(), s.num_vertices.to_string()),
            ("edges".to_string(), s.num_edges.to_string()),
            ("max_arity".to_string(), s.max_arity.to_string()),
            ("components".to_string(), s.components.to_string()),
            (
                "reduce_edges_dropped".to_string(),
                red.stats.edges_dropped.to_string(),
            ),
            (
                "reduce_vertices_peeled".to_string(),
                red.stats.vertices_peeled.to_string(),
            ),
            (
                "reduce_components".to_string(),
                red.stats.components.to_string(),
            ),
            (
                "tracked".to_string(),
                stripe.cache.tracked_graphs().to_string(),
            ),
            ("instance_hits".to_string(), c.instance_hits.to_string()),
            ("result_hits".to_string(), c.result_hits.to_string()),
            ("evictions".to_string(), c.evictions.to_string()),
            ("stripe".to_string(), idx.to_string()),
            (
                "pinned".to_string(),
                stripe.cache.pinned_count().to_string(),
            ),
            ("stripe_load".to_string(), list(&self.stripe_load)),
            ("stripe_evictions".to_string(), list(&self.stripe_evictions)),
            (
                "result_cache_hits".to_string(),
                list(&self.stripe_result_hits),
            ),
            (
                "result_cache_misses".to_string(),
                list(&self.stripe_result_misses),
            ),
        ];
        // The registry-backed service counters: one source of truth
        // shared with the `METRICS` exposition, so the two can never
        // drift.
        for m in self.metric_registry() {
            fields.push((m.stats_row.to_string(), m.value.to_string()));
        }
        if let Some(handle) = &self.store {
            let st = handle
                .store
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .stats();
            let rows = [
                ("store_hits", handle.hits.load(Ordering::Relaxed)),
                ("store_misses", handle.misses.load(Ordering::Relaxed)),
                ("store_invalid", handle.invalid.load(Ordering::Relaxed)),
                ("store_warmed", handle.warmed.load(Ordering::Relaxed)),
                (
                    "store_put_errors",
                    handle.put_errors.load(Ordering::Relaxed),
                ),
                ("store_schemas", st.schemas as u64),
                ("store_results", st.results as u64),
                ("store_dict_bags", st.dict_bags as u64),
                ("store_bytes", st.bytes),
                ("store_recovered_bytes", st.recovered_bytes),
            ];
            for (k, v) in rows {
                fields.push((k.to_string(), v.to_string()));
            }
        }
        Response::Stats { fields }
    }

    /// The central metric registry: every cross-stripe service counter
    /// with both its `METRICS` exposition name and its `STATS` row
    /// name, read from one place. [`ServiceState::stats_response`] and
    /// [`ServiceState::metrics_response`] both iterate this list, so a
    /// counter cannot appear in one surface with a different value (or
    /// not at all) in the other.
    fn metric_registry(&self) -> Vec<Metric> {
        let m = |name, stats_row, kind, value| Metric {
            name,
            stats_row,
            kind,
            value,
        };
        vec![
            m(
                "softhw_deadline_timeouts_total",
                "deadline_timeout",
                MetricKind::Counter,
                self.deadline_timeouts.load(Ordering::Relaxed),
            ),
            m(
                "softhw_busy_sheds_total",
                "busy_shed",
                MetricKind::Counter,
                self.busy_sheds.load(Ordering::Relaxed),
            ),
            m(
                "softhw_conns_active",
                "conns_active",
                MetricKind::Gauge,
                self.conns_active.load(Ordering::Relaxed),
            ),
            m(
                "softhw_pipelined_depth_max",
                "pipelined_depth",
                MetricKind::Gauge,
                self.pipelined_depth.load(Ordering::Relaxed),
            ),
            m(
                "softhw_batch_requests_total",
                "batch_requests",
                MetricKind::Counter,
                self.batch_requests.load(Ordering::Relaxed),
            ),
            m(
                "softhw_bytes_per_cached_schema",
                "bytes_per_cached_schema",
                MetricKind::Gauge,
                self.bytes_per_cached_schema(),
            ),
        ]
    }

    /// Approximate cache heap bytes per tracked schema, summed across
    /// the stripe mirrors (`0` with nothing cached). The succinctness
    /// headline stat: how much memory one warm schema costs.
    fn bytes_per_cached_schema(&self) -> u64 {
        let bytes: u64 = self
            .stripe_bytes
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum();
        let tracked: u64 = self
            .stripe_tracked
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum();
        if tracked == 0 {
            0
        } else {
            bytes / tracked
        }
    }

    /// Assembles the `METRICS` exposition: the registry counters and
    /// gauges, per-class request counts and latency histograms,
    /// per-stage duration histograms, batch-size and pipeline-depth
    /// histograms, and the slow-query totals. Stable Prometheus-style
    /// text; every metric family carries one `# TYPE` header.
    fn metrics_response(&self) -> Response {
        let obs = &self.obs;
        let mut lines: Vec<String> = Vec::new();
        for m in self.metric_registry() {
            match m.kind {
                MetricKind::Counter => softhw_obs::expose_counter(&mut lines, m.name, m.value),
                MetricKind::Gauge => softhw_obs::expose_gauge(&mut lines, m.name, m.value),
            }
        }
        lines.push("# TYPE softhw_requests_total counter".to_string());
        for (i, class) in OBS_CLASSES.iter().enumerate() {
            let count = obs.latency.get(i).map_or(0, Histogram::count);
            lines.push(format!("softhw_requests_total{{class=\"{class}\"}} {count}"));
        }
        for (i, class) in OBS_CLASSES.iter().enumerate() {
            let snap = obs.latency.get(i).map(Histogram::snapshot).unwrap_or_default();
            softhw_obs::expose_histogram(
                &mut lines,
                "softhw_request_duration_us",
                &format!("class=\"{class}\""),
                &snap,
                i == 0,
            );
        }
        for (i, name) in stage::ALL.iter().enumerate() {
            let snap = obs.stages.get(i).map(Histogram::snapshot).unwrap_or_default();
            softhw_obs::expose_histogram(
                &mut lines,
                "softhw_stage_duration_us",
                &format!("stage=\"{name}\""),
                &snap,
                i == 0,
            );
        }
        softhw_obs::expose_histogram(
            &mut lines,
            "softhw_batch_size",
            "",
            &obs.batch_sizes.snapshot(),
            true,
        );
        softhw_obs::expose_histogram(
            &mut lines,
            "softhw_pipeline_depth",
            "",
            &obs.pipeline_depths.snapshot(),
            true,
        );
        let slow = obs.slow.lock().unwrap_or_else(PoisonError::into_inner);
        softhw_obs::expose_counter(&mut lines, "softhw_slow_queries_total", slow.recorded());
        drop(slow);
        softhw_obs::expose_gauge(&mut lines, "softhw_obs_enabled", obs.enabled as u64);
        Response::Metrics { lines }
    }

    /// Renders the retained slow-query span trees (`STATS SLOW`),
    /// oldest first. Also used by `softhw-serve`'s shutdown dump.
    pub fn slow_log(&self) -> Vec<String> {
        self.obs
            .slow
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .render()
    }

    fn slow_response(&self) -> Response {
        Response::Slow {
            lines: self.slow_log(),
        }
    }
}

/// One registry entry: a service counter under both of its names.
struct Metric {
    /// `METRICS` exposition name (`softhw_…`).
    name: &'static str,
    /// `STATS` row name.
    stats_row: &'static str,
    kind: MetricKind,
    value: u64,
}

enum MetricKind {
    Counter,
    Gauge,
}

/// Stripe-routing hash: computed over the canonical forms of the
/// schema's *reduced* pieces, so a schema submitted raw and the same
/// schema submitted already reduced route to the same stripe — whose
/// [`DecompCache`] then shares the piece-level solve entries between
/// them. The result-cache and store keys stay on the *raw* canonical
/// form (witness frames are raw-vertex-indexed; two different raw
/// schemas must never serve each other's frames). Routing is
/// independent of `--no-reduce`, so answers can be compared across
/// modes stripe for stripe.
fn route_hash(h: &Hypergraph) -> u64 {
    let red = softhw_hypergraph::reduce(h);
    let mut words: Vec<u64> = Vec::new();
    for piece in &red.pieces {
        // Each canonical form is length-prefixed by construction
        // (vertex count, edge count first), so plain concatenation is
        // unambiguous.
        words.extend(canonical_form(&piece.h));
    }
    hash_u64s(&words)
}

/// The store/result-cache key of a request class (`None` = not
/// cacheable: `STATS` is volatile by design).
fn class_key(class: RequestClass) -> Option<ClassKey> {
    Some(match class {
        RequestClass::Shw => ClassKey::Shw,
        RequestClass::ShwLeq(k) => ClassKey::ShwLeq(k as u64),
        RequestClass::Hw => ClassKey::Hw,
        RequestClass::HwLeq(k) => ClassKey::HwLeq(k as u64),
        RequestClass::Best(EvalKind::Trivial, k) => ClassKey::BestTrivial(k as u64),
        RequestClass::Best(EvalKind::ConCov, k) => ClassKey::BestConCov(k as u64),
        RequestClass::Best(EvalKind::Shallow(d), k) => ClassKey::BestShallow { d, k: k as u64 },
        RequestClass::Stats
        | RequestClass::Hello
        | RequestClass::Metrics
        | RequestClass::Slow => return None,
    })
}

/// Mirrors a store-served response into the stripe's [`DecompCache`],
/// so later *related* requests see exactly the decision state the
/// solver path would have left behind — this is what keeps replayed
/// request sets byte-identical when some requests hit the store and
/// others (say, after a corrupted record) recompute. An exact-width
/// answer implies the solver's sweep also rejected every smaller
/// width, so those negative decisions are imported too. Imports
/// re-validate witnesses themselves and never clobber live state.
fn import_decisions(cache: &mut DecompCache, h: &Hypergraph, key: &ClassKey, resp: &Response) {
    let clamp = |k: u64| (k as usize).min(h.num_edges());
    match (key, resp) {
        (ClassKey::Shw, Response::Width { width, td, .. }) => {
            if let Ok(td) = td.to_td() {
                cache.import_shw_exact(h, *width, td);
            }
        }
        (ClassKey::ShwLeq(k), Response::Decision { td, .. }) => match td {
            Some(frame) => {
                if let Ok(td) = frame.to_td() {
                    cache.import_shw_leq(h, clamp(*k), Some(td));
                }
            }
            None => {
                cache.import_shw_leq(h, clamp(*k), None);
            }
        },
        (ClassKey::Hw, Response::Width { width, td, .. }) => {
            if let Ok(td) = td.to_td() {
                cache.import_hw_exact(h, *width, td);
            }
        }
        (ClassKey::HwLeq(k), Response::Decision { td, .. }) => match td {
            Some(frame) => {
                if let Ok(td) = frame.to_td() {
                    cache.import_hw_leq(h, clamp(*k), Some(td));
                }
            }
            None => {
                cache.import_hw_leq(h, clamp(*k), None);
            }
        },
        _ => {} // BEST answers live in the result cache only
    }
}

fn frame_of(owned: FrameOwned) -> TdFrame {
    TdFrame {
        universe: owned.universe,
        snapshot: owned.snapshot,
        nodes: owned.nodes,
    }
}

/// Rebuilds the exact [`Response`] a stored hit represents —
/// **re-validating every witness against the schema first**. A hit
/// whose shape does not match its key, whose frame does not decode,
/// or whose witness fails validation yields `None`: the store entry is
/// rejected and the request recomputes cold (identical answer, fresh
/// record).
fn response_from_hit(key: &ClassKey, hit: &StoreHit, h: &Hypergraph) -> Option<Response> {
    let validated = |owned: &FrameOwned| -> Option<TdFrame> {
        let frame = frame_of(owned.clone());
        let td = frame.to_td().ok()?;
        td.validate(h).ok()?;
        Some(frame)
    };
    // hw witnesses additionally need width-k edge covers to exist
    // (one decode + validation total).
    let validated_hw = |owned: &FrameOwned, k: usize| -> Option<TdFrame> {
        let frame = frame_of(owned.clone());
        let td = frame.to_td().ok()?;
        td.validate(h).ok()?;
        Ghd::from_td(h, td, k)?;
        Some(frame)
    };
    let decision = |class: &str, k: usize, td: Option<TdFrame>| Response::Decision {
        class: class.into(),
        fields: hit.fields.clone(),
        k,
        td,
    };
    Some(match (key, &hit.answer) {
        (ClassKey::Shw, HitAnswer::Width { width, frame }) => Response::Width {
            class: "SHW".into(),
            width: *width,
            td: validated(frame)?,
        },
        (ClassKey::Hw, HitAnswer::Width { width, frame }) => Response::Width {
            class: "HW".into(),
            width: *width,
            td: validated_hw(frame, *width)?,
        },
        (ClassKey::ShwLeq(k), HitAnswer::Yes(frame)) => {
            decision("SHW_LEQ", *k as usize, Some(validated(frame)?))
        }
        (ClassKey::ShwLeq(k), HitAnswer::No) => decision("SHW_LEQ", *k as usize, None),
        (ClassKey::HwLeq(k), HitAnswer::Yes(frame)) => decision(
            "HW_LEQ",
            *k as usize,
            Some(validated_hw(frame, (*k as usize).min(h.num_edges()))?),
        ),
        (ClassKey::HwLeq(k), HitAnswer::No) => decision("HW_LEQ", *k as usize, None),
        (
            ClassKey::BestTrivial(k) | ClassKey::BestConCov(k) | ClassKey::BestShallow { k, .. },
            HitAnswer::Yes(frame),
        ) => decision("BEST", *k as usize, Some(validated(frame)?)),
        (
            ClassKey::BestTrivial(k) | ClassKey::BestConCov(k) | ClassKey::BestShallow { k, .. },
            HitAnswer::No,
        ) => decision("BEST", *k as usize, None),
        _ => return None, // shape does not match the key: reject
    })
}

/// The write-behind message for a fresh cacheable response (`None` for
/// responses that are not persisted: errors, stats).
fn persist_msg(h: &Hypergraph, key: ClassKey, resp: &Response) -> Option<PersistMsg> {
    let (fields, answer) = match resp {
        Response::Width { width, td, .. } => (
            Vec::new(),
            OwnedAnswer::Width {
                width: *width,
                frame: td.clone(),
            },
        ),
        Response::Decision { fields, td, .. } => (
            fields.clone(),
            match td {
                Some(td) => OwnedAnswer::Yes(td.clone()),
                None => OwnedAnswer::No,
            },
        ),
        _ => return None,
    };
    Some(PersistMsg::Put(Box::new(PutPayload {
        schema: h.clone(),
        key,
        fields,
        answer,
    })))
}

impl ServiceState {
    /// Maps a [`DecompError`] onto the wire: budget trips become
    /// `TIMEOUT`/`BUSY` frames (counted for `STATS`), everything else
    /// an `ERR` of the matching category.
    fn decomp_error(&self, e: DecompError) -> Response {
        match &e {
            DecompError::DeadlineExceeded => {
                self.deadline_timeouts.fetch_add(1, Ordering::Relaxed);
                Response::Timeout
            }
            DecompError::Canceled => {
                // Cancelled mid-flight (a draining server): the request
                // did not complete and should be retried elsewhere.
                self.busy_sheds.fetch_add(1, Ordering::Relaxed);
                Response::Busy {
                    retry_after_ms: BUSY_RETRY_MS,
                }
            }
            DecompError::Limit(_) | DecompError::Shards(_) => Response::error("limit", e),
            DecompError::Internal { .. } => Response::error("internal", e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softhw_core::{hw, shw};
    use softhw_hypergraph::{named, render_hypergraph};

    fn state() -> ServiceState {
        ServiceState::new(ServiceConfig::default())
    }

    #[test]
    fn shw_responses_match_library() {
        let st = state();
        for h in [named::h2(), named::cycle(6), named::grid(3, 3)] {
            let body = render_hypergraph(&h);
            // The schema as both server and client see it: the text form
            // (rendering renumbers vertices relative to the builder).
            let h = softhw_hypergraph::parse_hypergraph(&body).unwrap();
            let req = Request::new(RequestClass::Shw, body);
            // Twice: the warm path must answer identically.
            let first = st.handle(&req);
            let again = st.handle(&req);
            assert_eq!(first, again);
            let (cold_w, _) = shw::shw(&h);
            match first {
                Response::Width { class, width, td } => {
                    assert_eq!(class, "SHW");
                    assert_eq!(width, cold_w);
                    let td = td.to_td().unwrap();
                    assert_eq!(td.validate(&h), Ok(()));
                    assert!(td.is_comp_nf(&h));
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
    }

    #[test]
    fn decisions_and_hw_match_library() {
        let st = state();
        let body = render_hypergraph(&named::h2());
        // Validate against the text form's numbering (what the wire
        // carries), not the builder's.
        let h = softhw_hypergraph::parse_hypergraph(&body).unwrap();
        // shw(H2) = 2: k = 1 rejects, k = 2 accepts with valid witness.
        match st.handle(&Request::new(RequestClass::ShwLeq(1), body.clone())) {
            Response::Decision { td, .. } => assert!(td.is_none()),
            other => panic!("{other:?}"),
        }
        match st.handle(&Request::new(RequestClass::ShwLeq(2), body.clone())) {
            Response::Decision { td, .. } => {
                let td = td.expect("shw(H2) <= 2").to_td().unwrap();
                assert_eq!(td.validate(&h), Ok(()));
            }
            other => panic!("{other:?}"),
        }
        let (hw_w, _) = hw::hw(&h);
        match st.handle(&Request::new(RequestClass::Hw, body.clone())) {
            Response::Width { class, width, td } => {
                assert_eq!(class, "HW");
                assert_eq!(width, hw_w);
                // The framed tree is the GHD's underlying TD; covers can
                // be rebuilt client-side at the reported width.
                let td = td.to_td().unwrap();
                let ghd = softhw_core::ghd::Ghd::from_td(&h, td, width).unwrap();
                assert!(ghd.validate(&h).is_ok());
            }
            other => panic!("{other:?}"),
        }
        // BEST with ConCov: width 2 suffices on C4 (Example 3's D2) but
        // not on C5 (Section 6's width jump to 3).
        let c4 = render_hypergraph(&named::cycle(4));
        match st.handle(&Request::new(RequestClass::Best(EvalKind::ConCov, 2), c4)) {
            Response::Decision { class, td, .. } => {
                assert_eq!(class, "BEST");
                assert!(td.is_some(), "ConCov-shw(C4) = 2");
                let c4h = softhw_hypergraph::parse_hypergraph(&render_hypergraph(&named::cycle(4)))
                    .unwrap();
                assert_eq!(td.unwrap().to_td().unwrap().validate(&c4h), Ok(()));
            }
            other => panic!("{other:?}"),
        }
        let c5 = render_hypergraph(&named::cycle(5));
        match st.handle(&Request::new(RequestClass::Best(EvalKind::ConCov, 2), c5)) {
            Response::Decision { td, .. } => assert!(td.is_none(), "ConCov-shw(C5) = 3"),
            other => panic!("{other:?}"),
        }
        match st.handle(&Request::new(RequestClass::Stats, body)) {
            Response::Stats { fields } => {
                let get = |k: &str| {
                    fields
                        .iter()
                        .find(|(key, _)| key == k)
                        .map(|(_, v)| v.clone())
                };
                assert_eq!(get("vertices").as_deref(), Some("10"));
                assert_eq!(get("edges").as_deref(), Some("8"));
                // The extended rows are present (store rows only with a
                // store attached).
                let loads = get("stripe_load").expect("per-stripe load row");
                assert_eq!(loads.split(',').count(), st.num_stripes());
                assert!(get("result_cache_hits").is_some());
                assert!(get("stripe_evictions").is_some());
                assert!(get("store_hits").is_none(), "no store attached");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sql_bodies_route_through_the_query_ast() {
        let st = state();
        let mut req = Request::new(
            RequestClass::Shw,
            "SELECT MIN(r.a) FROM r, s, t WHERE r.b = s.b AND s.c = t.c",
        );
        req.format = BodyFormat::Sql;
        match st.handle(&req) {
            Response::Width { width, .. } => assert_eq!(width, 1, "path query is acyclic"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_requests_become_error_responses() {
        let st = state();
        // Unparsable schema.
        let r = st.handle(&Request::new(RequestClass::Shw, "e1(a,"));
        assert!(
            matches!(r, Response::Error { ref kind, .. } if kind == "parse"),
            "{r:?}"
        );
        // The duplicate-name rejection reaches the wire.
        let r = st.handle(&Request::new(RequestClass::Shw, "e1(a,b), e1(b,c)."));
        assert!(
            matches!(r, Response::Error { ref kind, .. } if kind == "parse"),
            "{r:?}"
        );
        // Empty schema.
        let r = st.handle(&Request::new(RequestClass::Shw, "% nothing"));
        assert!(
            matches!(r, Response::Error { ref kind, .. } if kind == "request"),
            "{r:?}"
        );
        // Zero width.
        let r = st.handle(&Request::new(RequestClass::ShwLeq(0), "e1(a,b)."));
        assert!(
            matches!(r, Response::Error { ref kind, .. } if kind == "request"),
            "{r:?}"
        );
        // Blown limits surface as limit errors, and the stripe still
        // serves later requests.
        let tight = ServiceState::new(ServiceConfig {
            limits: SoftLimits {
                max_lambda_sets: 2,
                max_bags: 2,
            },
            ..ServiceConfig::default()
        });
        let grid = render_hypergraph(&named::grid(3, 3));
        let r = tight.handle(&Request::new(RequestClass::Shw, grid));
        assert!(
            matches!(r, Response::Error { ref kind, .. } if kind == "limit"),
            "{r:?}"
        );
        let ok = tight.handle(&Request::new(RequestClass::Shw, "e1(a,b)."));
        assert!(matches!(ok, Response::Width { width: 1, .. }), "{ok:?}");
    }

    #[test]
    fn absurd_widths_are_clamped_not_allocated() {
        let st = state();
        let r = st.handle(&Request::new(
            RequestClass::ShwLeq(usize::MAX),
            render_hypergraph(&named::h2()),
        ));
        match r {
            Response::Decision { k, td, .. } => {
                assert_eq!(k, usize::MAX);
                assert!(td.is_some(), "shw(H2) = 2 <= clamp(|E|)");
            }
            other => panic!("{other:?}"),
        }
    }

    /// Drops the STATS rows that may legitimately differ between the
    /// reduced and `--no-reduce` pipelines: the memory stat reflects
    /// the piece bookkeeping the reduced pipeline retains even when
    /// reduction is a no-op, so it is truthful, not drifting.
    fn mask_mode_dependent_rows(resp: Response) -> Response {
        match resp {
            Response::Stats { fields } => Response::Stats {
                fields: fields
                    .into_iter()
                    .filter(|(k, _)| k != "bytes_per_cached_schema")
                    .collect(),
            },
            other => other,
        }
    }

    #[test]
    fn no_reduce_answers_are_byte_identical_on_irreducible_schemas() {
        // The example corpus is irreducible, so `--no-reduce` must be
        // invisible: every response byte-identical, including STATS
        // (whose reduce_* rows are computed in both modes; only the
        // memory row is masked — see mask_mode_dependent_rows).
        let reduced = state();
        let no_reduce = ServiceState::new(ServiceConfig {
            no_reduce: true,
            ..ServiceConfig::default()
        });
        for h in [named::h2(), named::cycle(6), named::grid(3, 3)] {
            let body = render_hypergraph(&h);
            for class in [
                RequestClass::Shw,
                RequestClass::ShwLeq(2),
                RequestClass::Hw,
                RequestClass::HwLeq(2),
                RequestClass::Stats,
            ] {
                let a = mask_mode_dependent_rows(reduced.handle(&Request::new(class, body.clone())));
                let b =
                    mask_mode_dependent_rows(no_reduce.handle(&Request::new(class, body.clone())));
                assert_eq!(a, b, "{class:?} diverged under --no-reduce");
            }
        }
    }

    #[test]
    fn reducible_schemas_report_reduction_and_agree_across_modes() {
        let body = "c0(v0,v1), c1(v1,v2), c2(v2,v3), c3(v3,v0), dup(v0,v1), p1(v2,p), p2(p,q).";
        let reduced = state();
        let no_reduce = ServiceState::new(ServiceConfig {
            no_reduce: true,
            ..ServiceConfig::default()
        });
        // Same widths and decisions in both modes (witnesses may differ
        // in shape; both must be valid).
        let h = softhw_hypergraph::parse_hypergraph(body).unwrap();
        for st in [&reduced, &no_reduce] {
            match st.handle(&Request::new(RequestClass::Shw, body)) {
                Response::Width { width, td, .. } => {
                    assert_eq!(width, 2);
                    assert_eq!(td.to_td().unwrap().validate(&h), Ok(()));
                }
                other => panic!("{other:?}"),
            }
            match st.handle(&Request::new(RequestClass::Hw, body)) {
                Response::Width { width, td, .. } => {
                    assert_eq!(width, 2);
                    assert_eq!(td.to_td().unwrap().validate(&h), Ok(()));
                }
                other => panic!("{other:?}"),
            }
        }
        // Both modes report what the pipeline actually does, matching
        // the library's own reduction stats.
        let red = softhw_hypergraph::reduce(&h);
        assert!(red.stats.edges_dropped > 0 && red.stats.vertices_peeled > 0);
        for st in [&reduced, &no_reduce] {
            match st.handle(&Request::new(RequestClass::Stats, body)) {
                Response::Stats { fields } => {
                    let get = |k: &str| {
                        fields
                            .iter()
                            .find(|(key, _)| key == k)
                            .map(|(_, v)| v.clone())
                    };
                    assert_eq!(
                        get("reduce_edges_dropped"),
                        Some(red.stats.edges_dropped.to_string())
                    );
                    assert_eq!(
                        get("reduce_vertices_peeled"),
                        Some(red.stats.vertices_peeled.to_string())
                    );
                    assert_eq!(
                        get("reduce_components"),
                        Some(red.stats.components.to_string())
                    );
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn raw_and_prereduced_schemas_route_to_one_stripe_and_share_solves() {
        // The raw schema and its reduced core must route to the same
        // stripe (reduced-form routing) and, once the raw schema is
        // solved, the pre-reduced submission's pieces are already warm.
        let raw = "c0(v0,v1), c1(v1,v2), c2(v2,v3), c3(v3,v0), dup(v0,v1), p1(v2,p), p2(p,q).";
        let pre = "c0(v0,v1), c1(v1,v2), c2(v2,v3), c3(v3,v0).";
        let h_raw = softhw_hypergraph::parse_hypergraph(raw).unwrap();
        let h_pre = softhw_hypergraph::parse_hypergraph(pre).unwrap();
        assert_eq!(
            route_hash(&h_raw) % state().num_stripes() as u64,
            route_hash(&h_pre) % state().num_stripes() as u64
        );
        let st = state();
        assert!(matches!(
            st.handle(&Request::new(RequestClass::Shw, raw)),
            Response::Width { width: 2, .. }
        ));
        // The pre-reduced request must not redo any width decision.
        let misses_before: u64 = st
            .stripes
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .cache
                    .stats()
                    .result_misses
            })
            .sum();
        assert!(matches!(
            st.handle(&Request::new(RequestClass::Shw, pre)),
            Response::Width { width: 2, .. }
        ));
        let misses_after: u64 = st
            .stripes
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .cache
                    .stats()
                    .result_misses
            })
            .sum();
        assert_eq!(
            misses_after, misses_before,
            "pre-reduced schema recomputed a width decision"
        );
    }

    #[test]
    fn expired_deadline_times_out_and_retry_serves_identically() {
        let st = state();
        let body = render_hypergraph(&named::grid(3, 3));
        // A 0 ms deadline has expired before the solver starts: the
        // request must come back TIMEOUT (not an error, not a panic).
        let mut dead = Request::new(RequestClass::Shw, body.clone());
        dead.deadline_ms = Some(0);
        assert_eq!(st.handle(&dead), Response::Timeout);
        // Nothing was cached for the interrupted request and the stripe
        // is immediately reusable: the same schema without a deadline
        // answers exactly like a fresh state would.
        let ok = st.handle(&Request::new(RequestClass::Shw, body.clone()));
        assert_eq!(ok, state().handle(&Request::new(RequestClass::Shw, body)));
        assert!(matches!(ok, Response::Width { .. }), "{ok:?}");
        // The timeout is counted in STATS, and a request that now hits
        // the warm result cache answers even under an expired deadline
        // (cache probes are not budgeted).
        match st.handle(&Request::new(RequestClass::Stats, "e(a,b).")) {
            Response::Stats { fields } => {
                assert!(
                    fields
                        .iter()
                        .any(|(k, v)| k == "deadline_timeout" && v == "1"),
                    "{fields:?}"
                );
                assert!(fields.iter().any(|(k, _)| k == "busy_shed"), "{fields:?}");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(st.handle(&dead), ok, "warm repeats ignore the deadline");
    }

    #[test]
    fn default_deadline_applies_when_requests_carry_none() {
        let st = ServiceState::new(ServiceConfig {
            default_deadline_ms: Some(0),
            ..ServiceConfig::default()
        });
        let body = render_hypergraph(&named::grid(3, 3));
        let req = Request::new(RequestClass::Shw, body);
        assert_eq!(st.handle(&req), Response::Timeout);
        // A per-request deadline overrides the default.
        let mut generous = req.clone();
        generous.deadline_ms = Some(60_000);
        assert!(matches!(st.handle(&generous), Response::Width { .. }));
    }

    #[test]
    fn parse_errors_are_positioned_line_and_column() {
        let st = state();
        let r = st.handle(&Request::new(RequestClass::Shw, "e1(a,b),\ne1(b,c)."));
        match r {
            Response::Error { kind, message } => {
                assert_eq!(kind, "parse");
                assert!(
                    message.starts_with("2:1: "),
                    "expected line:col prefix, got {message:?}"
                );
                assert!(message.contains("duplicate edge name"), "{message}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn result_cache_serves_repeats_without_solver_work() {
        let st = state();
        let body = render_hypergraph(&named::h2());
        let req = Request::new(RequestClass::Shw, body.clone());
        let first = st.handle(&req);
        let again = st.handle(&req);
        assert_eq!(first, again);
        // The repeat came out of the result cache: the stripe's
        // decomp-cache counters did not move between the calls.
        let hits: u64 = st
            .stripe_result_hits
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum();
        assert_eq!(hits, 1, "second request must hit the result cache");
        // A zero-capacity result cache degrades to the solver caches
        // with identical responses.
        let no_cache = ServiceState::new(ServiceConfig {
            result_cache_capacity: 0,
            ..ServiceConfig::default()
        });
        assert_eq!(no_cache.handle(&req), first);
        assert_eq!(no_cache.handle(&req), first);
        let hits: u64 = no_cache
            .stripe_result_hits
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum();
        assert_eq!(hits, 0);
    }
}
