//! Request handling against a striped cross-query cache.
//!
//! The state the service shares across connections is a bank of
//! [`DecompCache`]s ("stripes"), each behind its own mutex. A request's
//! schema is parsed, hashed with [`structural_hash`], and routed to
//! stripe `hash mod stripes`: requests over the *same* schema always
//! meet the same warm cache (index, prepared instances,
//! [`IncrementalSweep`](softhw_core::IncrementalSweep) state, width
//! decisions), while requests over different schemas almost always run
//! concurrently on different stripes. Within one stripe the mutex
//! serialises handlers, and every cached entry point is deterministic,
//! so the response to a request depends only on the sequence of
//! requests its stripe processed before it — which is what the
//! concurrency property test replays and checks, response for response.
//!
//! Handlers never panic on request content: schema errors, blown
//! generation limits, and internal inconsistencies (degraded to cold
//! recomputes inside [`DecompCache`]) all map to `ERR` responses.

use crate::wire::{BodyFormat, EvalKind, Request, RequestClass, Response, TdFrame};
use softhw_core::constraints::{ConCov, ShallowCyc, Trivial};
use softhw_core::ctd_opt::best_on;
use softhw_core::error::DecompError;
use softhw_core::soft::{soft_bags_with, SoftLimits};
use softhw_core::DecompCache;
use softhw_hypergraph::cache::structural_hash;
use softhw_hypergraph::{parse_hypergraph, stats, Hypergraph};
use std::sync::{Mutex, PoisonError};

/// Tuning knobs of a [`ServiceState`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Number of cache stripes (concurrently lockable cache shards).
    pub stripes: usize,
    /// Per-stripe [`DecompCache`] capacity (structurally distinct
    /// schemas before LRU eviction).
    pub cache_capacity: usize,
    /// Candidate-generation guards applied to every request.
    pub limits: SoftLimits,
    /// Largest schema (edge count) a request may carry.
    pub max_edges: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            stripes: 8,
            cache_capacity: softhw_core::cache::DEFAULT_MAX_GRAPHS,
            limits: SoftLimits::default(),
            max_edges: 100_000,
        }
    }
}

struct Stripe {
    cache: DecompCache,
    /// Tags of the requests this stripe processed, in lock order — the
    /// linearisation record the concurrency property test replays.
    log: Vec<u64>,
}

/// Shared, thread-safe service state: the striped cache bank.
pub struct ServiceState {
    config: ServiceConfig,
    stripes: Vec<Mutex<Stripe>>,
}

impl ServiceState {
    /// Fresh state under `config` (stripe count clamped to ≥ 1).
    pub fn new(config: ServiceConfig) -> ServiceState {
        let stripes = (0..config.stripes.max(1))
            .map(|_| {
                Mutex::new(Stripe {
                    cache: DecompCache::with_capacity(config.cache_capacity),
                    log: Vec::new(),
                })
            })
            .collect();
        ServiceState { config, stripes }
    }

    /// The configuration this state was created with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Number of stripes.
    pub fn num_stripes(&self) -> usize {
        self.stripes.len()
    }

    /// Per-stripe request-tag logs in processing (lock) order, for
    /// replay verification.
    pub fn stripe_logs(&self) -> Vec<Vec<u64>> {
        self.stripes
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).log.clone())
            .collect()
    }

    /// Handles one request end to end.
    pub fn handle(&self, req: &Request) -> Response {
        self.handle_tagged(req, None)
    }

    /// [`ServiceState::handle`], additionally recording `tag` in the
    /// routed stripe's processing log (under the same lock acquisition
    /// that serves the request).
    pub fn handle_tagged(&self, req: &Request, tag: Option<u64>) -> Response {
        let h = match self.schema(req) {
            Ok(h) => h,
            Err(resp) => return resp,
        };
        let hash = structural_hash(&h);
        let stripe = &self.stripes[(hash % self.stripes.len() as u64) as usize];
        let mut stripe = stripe.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(tag) = tag {
            stripe.log.push(tag);
        }
        self.dispatch(req, &h, &mut stripe.cache)
    }

    /// Parses and validates the request's schema.
    fn schema(&self, req: &Request) -> Result<Hypergraph, Response> {
        let h = match req.format {
            BodyFormat::HyperBench => {
                parse_hypergraph(&req.body).map_err(|e| Response::error("parse", e))?
            }
            BodyFormat::Sql => {
                let q =
                    softhw_query::parse_sql(&req.body).map_err(|e| Response::error("parse", e))?;
                softhw_query::ast_hypergraph(&q).map_err(|e| Response::error("parse", e))?
            }
        };
        if h.num_edges() == 0 {
            return Err(Response::error("request", "empty schema"));
        }
        if h.num_edges() > self.config.max_edges {
            return Err(Response::error(
                "request",
                format!(
                    "schema has {} edges, limit is {}",
                    h.num_edges(),
                    self.config.max_edges
                ),
            ));
        }
        Ok(h)
    }

    fn dispatch(&self, req: &Request, h: &Hypergraph, cache: &mut DecompCache) -> Response {
        // Soft_{H,k} is invariant in k beyond |E(H)| (λ-subsets never
        // repeat edges), so clamp the *computation* width — an absurd
        // requested k must not size scratch pools.
        let clamp = |k: usize| k.min(h.num_edges());
        match req.class {
            RequestClass::Shw => match cache.try_shw_with(h, &self.config.limits) {
                Ok((width, td)) => Response::Width {
                    class: "SHW".into(),
                    width,
                    td: TdFrame::from_td(&td, h.num_vertices()),
                },
                Err(e) => decomp_error(e),
            },
            RequestClass::ShwLeq(k) => {
                if k == 0 {
                    return Response::error("request", "width must be >= 1");
                }
                match cache.shw_leq(h, clamp(k), &self.config.limits) {
                    Ok(td) => Response::Decision {
                        class: "SHW_LEQ".into(),
                        fields: Vec::new(),
                        k,
                        td: td.map(|td| TdFrame::from_td(&td, h.num_vertices())),
                    },
                    Err(e) => decomp_error(e),
                }
            }
            RequestClass::Hw => {
                // Manual sweep over the memoised decision so an input no
                // width accepts degrades to an error, not a panic.
                let mut found = None;
                for k in 1..=h.num_edges().max(1) {
                    if let Some(ghd) = cache.hw_leq(h, k) {
                        found = Some((k, ghd));
                        break;
                    }
                }
                match found {
                    Some((width, ghd)) => Response::Width {
                        class: "HW".into(),
                        width,
                        td: TdFrame::from_td(&ghd.td, h.num_vertices()),
                    },
                    None => Response::error("internal", "no width up to |E(H)| admits an HD"),
                }
            }
            RequestClass::HwLeq(k) => {
                if k == 0 {
                    return Response::error("request", "width must be >= 1");
                }
                let ghd = cache.hw_leq(h, clamp(k));
                Response::Decision {
                    class: "HW_LEQ".into(),
                    fields: Vec::new(),
                    k,
                    td: ghd.map(|g| TdFrame::from_td(&g.td, h.num_vertices())),
                }
            }
            RequestClass::Best(eval, k) => {
                if k == 0 {
                    return Response::error("request", "width must be >= 1");
                }
                let bags = match soft_bags_with(h, clamp(k), &self.config.limits) {
                    Ok(bags) => bags,
                    Err(e) => return decomp_error(e.into()),
                };
                let inst = cache.instance_for(h, &bags);
                let mut fields = vec![("eval".to_string(), eval.token())];
                let best = match eval {
                    EvalKind::Trivial => best_on(inst, &Trivial).map(|(td, ())| (td, None)),
                    EvalKind::ConCov => {
                        best_on(inst, &ConCov { k: clamp(k) }).map(|(td, ())| (td, None))
                    }
                    EvalKind::Shallow(d) => {
                        best_on(inst, &ShallowCyc { d }).map(|(td, cost)| (td, Some(cost)))
                    }
                };
                if let Some((_, Some(cost))) = &best {
                    fields.push(("cost".to_string(), cost.to_string()));
                }
                Response::Decision {
                    class: "BEST".into(),
                    fields,
                    k,
                    td: best.map(|(td, _)| TdFrame::from_td(&td, h.num_vertices())),
                }
            }
            RequestClass::Stats => {
                let s = stats::stats(h);
                let c = cache.stats();
                let fields = vec![
                    ("vertices".to_string(), s.num_vertices.to_string()),
                    ("edges".to_string(), s.num_edges.to_string()),
                    ("max_arity".to_string(), s.max_arity.to_string()),
                    ("components".to_string(), s.components.to_string()),
                    ("tracked".to_string(), cache.tracked_graphs().to_string()),
                    ("instance_hits".to_string(), c.instance_hits.to_string()),
                    ("result_hits".to_string(), c.result_hits.to_string()),
                    ("evictions".to_string(), c.evictions.to_string()),
                ];
                Response::Stats { fields }
            }
        }
    }
}

/// Maps a [`DecompError`] onto the wire's error categories.
fn decomp_error(e: DecompError) -> Response {
    match &e {
        DecompError::Limit(_) | DecompError::Shards(_) => Response::error("limit", e),
        DecompError::Internal { .. } => Response::error("internal", e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softhw_core::{hw, shw};
    use softhw_hypergraph::{named, render_hypergraph};

    fn state() -> ServiceState {
        ServiceState::new(ServiceConfig::default())
    }

    #[test]
    fn shw_responses_match_library() {
        let st = state();
        for h in [named::h2(), named::cycle(6), named::grid(3, 3)] {
            let body = render_hypergraph(&h);
            // The schema as both server and client see it: the text form
            // (rendering renumbers vertices relative to the builder).
            let h = softhw_hypergraph::parse_hypergraph(&body).unwrap();
            let req = Request::new(RequestClass::Shw, body);
            // Twice: the warm path must answer identically.
            let first = st.handle(&req);
            let again = st.handle(&req);
            assert_eq!(first, again);
            let (cold_w, _) = shw::shw(&h);
            match first {
                Response::Width { class, width, td } => {
                    assert_eq!(class, "SHW");
                    assert_eq!(width, cold_w);
                    let td = td.to_td().unwrap();
                    assert_eq!(td.validate(&h), Ok(()));
                    assert!(td.is_comp_nf(&h));
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
    }

    #[test]
    fn decisions_and_hw_match_library() {
        let st = state();
        let body = render_hypergraph(&named::h2());
        // Validate against the text form's numbering (what the wire
        // carries), not the builder's.
        let h = softhw_hypergraph::parse_hypergraph(&body).unwrap();
        // shw(H2) = 2: k = 1 rejects, k = 2 accepts with valid witness.
        match st.handle(&Request::new(RequestClass::ShwLeq(1), body.clone())) {
            Response::Decision { td, .. } => assert!(td.is_none()),
            other => panic!("{other:?}"),
        }
        match st.handle(&Request::new(RequestClass::ShwLeq(2), body.clone())) {
            Response::Decision { td, .. } => {
                let td = td.expect("shw(H2) <= 2").to_td().unwrap();
                assert_eq!(td.validate(&h), Ok(()));
            }
            other => panic!("{other:?}"),
        }
        let (hw_w, _) = hw::hw(&h);
        match st.handle(&Request::new(RequestClass::Hw, body.clone())) {
            Response::Width { class, width, td } => {
                assert_eq!(class, "HW");
                assert_eq!(width, hw_w);
                // The framed tree is the GHD's underlying TD; covers can
                // be rebuilt client-side at the reported width.
                let td = td.to_td().unwrap();
                let ghd = softhw_core::ghd::Ghd::from_td(&h, td, width).unwrap();
                assert!(ghd.validate(&h).is_ok());
            }
            other => panic!("{other:?}"),
        }
        // BEST with ConCov: width 2 suffices on C4 (Example 3's D2) but
        // not on C5 (Section 6's width jump to 3).
        let c4 = render_hypergraph(&named::cycle(4));
        match st.handle(&Request::new(RequestClass::Best(EvalKind::ConCov, 2), c4)) {
            Response::Decision { class, td, .. } => {
                assert_eq!(class, "BEST");
                assert!(td.is_some(), "ConCov-shw(C4) = 2");
                let c4h = softhw_hypergraph::parse_hypergraph(&render_hypergraph(&named::cycle(4)))
                    .unwrap();
                assert_eq!(td.unwrap().to_td().unwrap().validate(&c4h), Ok(()));
            }
            other => panic!("{other:?}"),
        }
        let c5 = render_hypergraph(&named::cycle(5));
        match st.handle(&Request::new(RequestClass::Best(EvalKind::ConCov, 2), c5)) {
            Response::Decision { td, .. } => assert!(td.is_none(), "ConCov-shw(C5) = 3"),
            other => panic!("{other:?}"),
        }
        match st.handle(&Request::new(RequestClass::Stats, body)) {
            Response::Stats { fields } => {
                let get = |k: &str| {
                    fields
                        .iter()
                        .find(|(key, _)| key == k)
                        .map(|(_, v)| v.clone())
                };
                assert_eq!(get("vertices").as_deref(), Some("10"));
                assert_eq!(get("edges").as_deref(), Some("8"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sql_bodies_route_through_the_query_ast() {
        let st = state();
        let mut req = Request::new(
            RequestClass::Shw,
            "SELECT MIN(r.a) FROM r, s, t WHERE r.b = s.b AND s.c = t.c",
        );
        req.format = BodyFormat::Sql;
        match st.handle(&req) {
            Response::Width { width, .. } => assert_eq!(width, 1, "path query is acyclic"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_requests_become_error_responses() {
        let st = state();
        // Unparsable schema.
        let r = st.handle(&Request::new(RequestClass::Shw, "e1(a,"));
        assert!(
            matches!(r, Response::Error { ref kind, .. } if kind == "parse"),
            "{r:?}"
        );
        // The duplicate-name rejection reaches the wire.
        let r = st.handle(&Request::new(RequestClass::Shw, "e1(a,b), e1(b,c)."));
        assert!(
            matches!(r, Response::Error { ref kind, .. } if kind == "parse"),
            "{r:?}"
        );
        // Empty schema.
        let r = st.handle(&Request::new(RequestClass::Shw, "% nothing"));
        assert!(
            matches!(r, Response::Error { ref kind, .. } if kind == "request"),
            "{r:?}"
        );
        // Zero width.
        let r = st.handle(&Request::new(RequestClass::ShwLeq(0), "e1(a,b)."));
        assert!(
            matches!(r, Response::Error { ref kind, .. } if kind == "request"),
            "{r:?}"
        );
        // Blown limits surface as limit errors, and the stripe still
        // serves later requests.
        let tight = ServiceState::new(ServiceConfig {
            limits: SoftLimits {
                max_lambda_sets: 2,
                max_bags: 2,
            },
            ..ServiceConfig::default()
        });
        let grid = render_hypergraph(&named::grid(3, 3));
        let r = tight.handle(&Request::new(RequestClass::Shw, grid));
        assert!(
            matches!(r, Response::Error { ref kind, .. } if kind == "limit"),
            "{r:?}"
        );
        let ok = tight.handle(&Request::new(RequestClass::Shw, "e1(a,b)."));
        assert!(matches!(ok, Response::Width { width: 1, .. }), "{ok:?}");
    }

    #[test]
    fn absurd_widths_are_clamped_not_allocated() {
        let st = state();
        let r = st.handle(&Request::new(
            RequestClass::ShwLeq(usize::MAX),
            render_hypergraph(&named::h2()),
        ));
        match r {
            Response::Decision { k, td, .. } => {
                assert_eq!(k, usize::MAX);
                assert!(td.is_some(), "shw(H2) = 2 <= clamp(|E|)");
            }
            other => panic!("{other:?}"),
        }
    }
}
