//! # softhw-service
//!
//! The decomposition service front-end: the paper's repeated-query
//! setting (Algorithms 1–2 evaluated per schema, the Section 7 engine
//! experiments) is a request/response workload, and this crate turns
//! the workspace's cross-query machinery into a long-lived server for
//! it.
//!
//! - [`wire`]: the newline-framed request/response format. Requests
//!   carry a schema (HyperBench text or a SQL query routed through the
//!   query AST) plus a request class (`SHW`, `SHW_LEQ k`, `HW`,
//!   `HW_LEQ k`, `BEST eval k`, `STATS`); responses frame witness
//!   decompositions as flat bag words + a dense node table
//!   ([`wire::TdFrame`], built on
//!   [`ArenaSnapshot`](softhw_hypergraph::ArenaSnapshot)).
//! - [`state`]: the shared handler state — a bank of
//!   [`DecompCache`](softhw_core::DecompCache) stripes routed by
//!   [`structural_hash`](softhw_hypergraph::structural_hash), so
//!   repeated schemas hit warm indexes, prepared instances, and
//!   incremental sweep state, while distinct schemas proceed
//!   concurrently. Fronted by a per-stripe result cache and, with
//!   `--store`, by the disk-backed [`softhw_store::Store`]: persisted
//!   witnesses are re-validated before they are served, fresh results
//!   are persisted write-behind, and boot warm-starts (and pins) the
//!   hottest stored schemas.
//! - [`server`]: the TCP listener and worker pool (std threads only,
//!   like the rest of the workspace).
//!
//! Handlers are hardened end to end: malformed schemas, blown
//! generation limits, and internal inconsistencies all produce `ERR`
//! responses — the process never dies on request content. Concurrency
//! correctness is property-tested: under simultaneous mixed-schema
//! traffic the responses are bit-identical to a single-threaded replay
//! of each stripe's processing order (`tests/service_props.rs`).

#![warn(missing_docs)]

pub mod server;
pub mod state;
pub mod wire;

pub use server::{handle_connection, roundtrip, ServeOptions, Server, ShutdownHandle};
pub use state::{ServiceConfig, ServiceState};
pub use wire::{
    read_frame, write_frame, BatchRequest, BodyFormat, EvalKind, FrameDecoder, HeaderVerb, Request,
    RequestClass, RequestHeader, Response, TdFrame, WireError, WireRequest, PROTOCOL_VERBS,
    PROTOCOL_VERSION,
};
