//! The TCP front-end: a listener, a bounded worker pool, persistent
//! connections, overload shedding, and graceful drain shutdown.
//!
//! Connections are fanned out to a fixed pool of `std::thread::scope`
//! workers through a **bounded** channel (the pending-connection queue).
//! Each connection carries any number of request frames; a worker reads
//! a frame, dispatches it against the shared [`ServiceState`] (whose
//! stripe locks provide all cross-connection synchronisation) under a
//! per-request [`Budget`], writes the response frame, and loops until
//! the client closes. A malformed frame gets an `ERR` response on the
//! same connection; only transport errors drop it.
//!
//! **Shedding:** when the queue is full the accept loop does not stall
//! and does not buffer unboundedly — the connection is answered with a
//! `BUSY <retry-after-ms>` frame and closed, before any solver work.
//! The same applies to connections accepted in the instant the pool is
//! shutting down, which previously were dropped with no response at
//! all.
//!
//! **Graceful drain:** [`Server::shutdown_handle`] hands out a
//! [`ShutdownHandle`] whose [`shutdown`](ShutdownHandle::shutdown) is a
//! single atomic store (async-signal-safe — `softhw-serve` calls it
//! from its SIGINT/SIGTERM handlers). The accept loop notices within
//! one poll interval and stops accepting; every in-flight request's
//! [`Budget`] is cancelled, so long solves abort cooperatively (their
//! caches reset to a cold-rebuildable state) and are answered `BUSY`;
//! idle persistent connections are closed; queued-but-unstarted
//! connections get a `BUSY` frame instead of silence; and the
//! write-behind store channel is drained and fsynced before
//! [`Server::run`] returns.

use crate::state::{ServiceState, BUSY_RETRY_MS};
use crate::wire::{write_frame, Request, Response, MAX_FRAME_LINES, MAX_LINE_BYTES};
use softhw_core::Budget;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::Duration;

/// How often the accept loop re-checks the shutdown flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Per-read socket timeout on accepted connections: the interval at
/// which a worker blocked on an idle connection re-checks the shutdown
/// flag. Frame reads preserve partial progress across these timeouts,
/// so a slow client is not penalised.
const READ_POLL: Duration = Duration::from_millis(100);

/// Server options; see field docs.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Bind address, e.g. `127.0.0.1:7401` (`:0` for an OS-picked port).
    pub addr: String,
    /// Connection-handling worker threads.
    pub workers: usize,
    /// Stop after accepting this many connections (`None` = run
    /// forever). Used by smoke tests and benchmarks for clean shutdown.
    pub max_conns: Option<u64>,
    /// Bound on connections queued for a free worker. A connection
    /// arriving with the queue full is shed with `BUSY` instead of
    /// waiting (and instead of the accept loop stalling).
    pub queue_depth: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7401".to_string(),
            workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
            max_conns: None,
            queue_depth: 128,
        }
    }
}

/// Drain-shutdown state shared between the accept loop, the workers,
/// and [`ShutdownHandle`]s: the stop flag plus the registry of
/// in-flight request budgets to cancel.
#[derive(Default)]
struct Drain {
    stop: AtomicBool,
    next_id: AtomicU64,
    inflight: Mutex<HashMap<u64, Budget>>,
}

impl Drain {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Registers an in-flight request's budget; the returned id
    /// deregisters it.
    fn register(&self, budget: Budget) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(id, budget);
        id
    }

    fn deregister(&self, id: u64) {
        self.inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&id);
    }

    /// Cancels every registered in-flight budget. Requests that
    /// register *after* this runs observe the stop flag themselves and
    /// self-cancel (see `serve_connection`), closing the race.
    fn cancel_inflight(&self) {
        let inflight = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
        for budget in inflight.values() {
            budget.cancel();
        }
    }
}

/// A cloneable handle that asks a running [`Server`] to drain and stop.
#[derive(Clone)]
pub struct ShutdownHandle {
    drain: Arc<Drain>,
}

impl ShutdownHandle {
    /// Requests a graceful drain: stop accepting, cancel in-flight
    /// work, flush the store. This is a single atomic store —
    /// **async-signal-safe**, so it may be called from a SIGINT/SIGTERM
    /// handler. The heavy lifting (budget cancellation, worker join,
    /// store fsync) happens on the server's own threads.
    pub fn shutdown(&self) {
        self.drain.stop.store(true, Ordering::SeqCst);
    }

    /// True once a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.drain.stopping()
    }
}

/// A bound listener plus the shared state, ready to run.
pub struct Server {
    listener: TcpListener,
    state: ServiceState,
    opts: ServeOptions,
    drain: Arc<Drain>,
}

impl Server {
    /// Binds the listener. The state is owned by the server and shared
    /// by reference with the scoped workers — no leak, no `Arc`.
    pub fn bind(opts: ServeOptions, state: ServiceState) -> io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        Ok(Server {
            listener,
            state,
            opts,
            drain: Arc::new(Drain::default()),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can request a graceful drain of this server while
    /// [`Server::run`] owns it (e.g. from a signal handler or another
    /// thread).
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            drain: Arc::clone(&self.drain),
        }
    }

    /// Accept loop: runs until `max_conns` connections were accepted, a
    /// [`ShutdownHandle`] fires, or forever; returns the number of
    /// connections accepted. Worker panics are *contained*:
    /// `serve_connection` runs under `catch_unwind`, so a panicking
    /// handler (a solver invariant the hardened paths did not cover)
    /// kills only its own connection — the worker keeps pulling from
    /// the queue, the pool never shrinks, and the scope join at
    /// shutdown does not re-raise. State locks recover from poisoning
    /// (and a cache poisoned mid-mutation at worst degrades to the cold
    /// recompute paths). Before returning, the write-behind store
    /// channel (if any) is drained and fsynced.
    pub fn run(self) -> io::Result<u64> {
        let workers = self.opts.workers.max(1);
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(self.opts.queue_depth.max(1));
        let rx = Mutex::new(rx);
        let state = &self.state;
        let drain = &*self.drain;
        let mut accepted: u64 = 0;
        self.listener.set_nonblocking(true)?;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // Holding the lock only for the recv keeps the pool
                    // work-stealing: whichever worker is free next takes
                    // the next connection.
                    let next = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(poisoned) => poisoned.into_inner().recv(),
                    };
                    match next {
                        Ok(stream) => {
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                serve_connection(stream, state, drain)
                            }));
                        }
                        Err(_) => break, // channel closed: shutting down
                    }
                });
            }
            loop {
                if drain.stopping() {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        accepted += 1;
                        // Workers poll their sockets, so they outlive a
                        // vanished client by at most one READ_POLL.
                        let _ = stream.set_read_timeout(Some(READ_POLL));
                        match tx.try_send(stream) {
                            Ok(()) => {}
                            // Queue full (overload) or workers gone
                            // (shutdown): shed with BUSY, never silence.
                            Err(mpsc::TrySendError::Full(stream))
                            | Err(mpsc::TrySendError::Disconnected(stream)) => {
                                shed(stream, state);
                            }
                        }
                        if self.opts.max_conns.is_some_and(|m| accepted >= m) {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => continue,
                }
            }
            // Stop feeding workers, then let the scope join them. Only
            // an actual drain (shutdown requested) cancels in-flight
            // budgets — a `max_conns` completion lets workers finish
            // every accepted connection normally.
            drop(tx);
            if drain.stopping() {
                drain.cancel_inflight();
            }
        });
        // Workers are joined: flush the write-behind store channel so
        // every acknowledged result is on disk before run() returns.
        self.state.sync_store();
        Ok(accepted)
    }
}

/// Sheds a connection that never reached a worker: one `BUSY` frame,
/// counted in `STATS`, then close.
fn shed(mut stream: TcpStream, state: &ServiceState) {
    let _ = stream.set_nodelay(true);
    busy_then_close(&mut stream, state);
}

/// Writes a `BUSY` frame, counts it, and closes the connection without
/// tearing down the frame in flight: closing a socket whose receive
/// queue still holds the client's (never-read) request bytes sends an
/// RST, which can discard the `BUSY` before the client reads it. So:
/// half-close the write side, then drain pending input briefly; the
/// timeout bounds how long an absent client can hold us here.
fn busy_then_close(stream: &mut TcpStream, state: &ServiceState) {
    state.note_busy_shed();
    let busy = Response::Busy {
        retry_after_ms: BUSY_RETRY_MS,
    };
    if write_frame(stream, &busy.encode()).is_err() {
        return;
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut scratch = [0u8; 4096];
    for _ in 0..8 {
        match io::Read::read(stream, &mut scratch) {
            // EOF (client closed) or timeout (receive queue empty):
            // either way a close now carries no RST risk that matters.
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// What a draining-aware frame read produced.
enum NextFrame {
    Frame(Vec<String>),
    /// Clean EOF before any line: the client closed.
    Eof,
    /// A drain began while waiting for (or mid-way through) a frame.
    Draining,
    /// Transport error or protocol violation: drop the connection.
    Transport,
}

/// Reads one frame like [`crate::wire::read_frame`], but on a socket
/// with a read timeout: timeouts check the drain flag and *resume the
/// partial frame* — accumulated lines and the partial current line are
/// kept — so slow clients lose nothing while idle workers still notice
/// a shutdown within one [`READ_POLL`].
fn read_frame_draining(reader: &mut BufReader<TcpStream>, drain: &Drain) -> NextFrame {
    let mut lines: Vec<String> = Vec::new();
    let mut line = String::new();
    loop {
        // Bound what this pass may buffer; `line` already holds any
        // partial progress from before a timeout.
        let room = (MAX_LINE_BYTES + 1).saturating_sub(line.len()).max(1);
        let mut limited = io::Read::take(&mut *reader, room as u64);
        match limited.read_line(&mut line) {
            Ok(0) => {
                if lines.is_empty() && line.is_empty() {
                    return NextFrame::Eof;
                }
                return NextFrame::Transport; // EOF mid-frame
            }
            Ok(_) => {
                if line.len() > MAX_LINE_BYTES {
                    return NextFrame::Transport;
                }
                if !line.ends_with('\n') {
                    continue; // mid-line: accumulate (EOF resolves above)
                }
                let trimmed = line.trim_end_matches(['\n', '\r']);
                if trimmed == "%%" {
                    return NextFrame::Frame(lines);
                }
                let unstuffed = trimmed.strip_prefix("% ").unwrap_or(trimmed);
                lines.push(unstuffed.to_string());
                if lines.len() > MAX_FRAME_LINES {
                    return NextFrame::Transport;
                }
                line.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Socket read timeout: any bytes read before it are
                // already in `line`. Re-check the drain flag and wait
                // on.
                if drain.stopping() {
                    return NextFrame::Draining;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return NextFrame::Transport,
        }
    }
}

/// Serves one connection: frames in, frames out, until EOF, a transport
/// error, or a drain. During a drain, a connection that was never
/// served gets a `BUSY` frame (it would otherwise see pure silence); an
/// idle persistent connection is simply closed.
fn serve_connection(stream: TcpStream, state: &ServiceState, drain: &Drain) {
    // Nagle hurts small request/response frames.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut served_any = false;
    let drain_close = |writer: &mut TcpStream, served_any: bool| {
        if !served_any {
            busy_then_close(writer, state);
        }
    };
    loop {
        if drain.stopping() {
            return drain_close(&mut writer, served_any);
        }
        let lines = match read_frame_draining(&mut reader, drain) {
            NextFrame::Frame(lines) => lines,
            NextFrame::Eof => return,
            NextFrame::Draining => return drain_close(&mut writer, served_any),
            NextFrame::Transport => return,
        };
        let response = match Request::decode(&lines) {
            Ok(req) => {
                let budget = state.request_budget(&req);
                let id = drain.register(budget.clone());
                // A drain that fired between the loop-top check and the
                // registration has already swept the registry: observe
                // it ourselves so the request still aborts promptly.
                if drain.stopping() {
                    budget.cancel();
                }
                let resp = state.handle_tagged_budgeted(&req, None, &budget);
                drain.deregister(id);
                resp
            }
            Err(e) => Response::error("parse", e),
        };
        served_any = true;
        if write_frame(&mut writer, &response.encode()).is_err() {
            return;
        }
    }
}

/// Serves one connection against `state` with no drain coordination —
/// the embedding-friendly entry point (tests, single-connection tools).
/// [`Server::run`] wires connections through the draining variant.
pub fn handle_connection(stream: TcpStream, state: &ServiceState) {
    serve_connection(stream, state, &Drain::default());
}

/// Client-side convenience: sends one request over an existing stream
/// and reads the response frame.
pub fn roundtrip(stream: &mut TcpStream, req: &Request) -> io::Result<Response> {
    use std::io::Write as _;
    stream.write_all(req.encode().as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let lines = crate::wire::read_frame(&mut reader)?.ok_or_else(|| {
        io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed mid-reply")
    })?;
    Response::decode(&lines).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ServiceConfig;
    use crate::wire::RequestClass;
    use softhw_hypergraph::{named, render_hypergraph};

    #[test]
    fn end_to_end_over_tcp() {
        let state = ServiceState::new(ServiceConfig::default());
        let server = Server::bind(
            ServeOptions {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
                max_conns: Some(1),
                ..ServeOptions::default()
            },
            state,
        )
        .expect("bind loopback");
        let addr = server.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            let body = render_hypergraph(&named::h2());
            // Several requests on one connection, mixed classes.
            let r1 = roundtrip(&mut stream, &Request::new(RequestClass::Shw, body.clone()))
                .expect("shw roundtrip");
            assert!(matches!(r1, Response::Width { width: 2, .. }), "{r1:?}");
            let r2 = roundtrip(
                &mut stream,
                &Request::new(RequestClass::ShwLeq(1), body.clone()),
            )
            .expect("leq roundtrip");
            assert!(matches!(r2, Response::Decision { td: None, .. }), "{r2:?}");
            let r3 = roundtrip(&mut stream, &Request::new(RequestClass::Shw, "e1(a,"))
                .expect("error roundtrip");
            assert!(matches!(r3, Response::Error { .. }), "{r3:?}");
        });
        let served = server.run().expect("serve");
        assert_eq!(served, 1);
        client.join().expect("client thread");
    }

    #[test]
    fn full_queue_sheds_with_busy_not_silence() {
        let state = ServiceState::new(ServiceConfig::default());
        let server = Server::bind(
            ServeOptions {
                addr: "127.0.0.1:0".to_string(),
                workers: 1,
                max_conns: Some(3),
                queue_depth: 1,
            },
            state,
        )
        .expect("bind loopback");
        let addr = server.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let body = render_hypergraph(&named::h2());
            // A occupies the single worker (a served request proves the
            // worker is parked on this connection).
            let mut a = TcpStream::connect(addr).expect("connect a");
            let ra = roundtrip(&mut a, &Request::new(RequestClass::Shw, body.clone()))
                .expect("a served");
            assert!(matches!(ra, Response::Width { .. }), "{ra:?}");
            // B fills the one queue slot.
            let b = TcpStream::connect(addr).expect("connect b");
            std::thread::sleep(Duration::from_millis(200));
            // C finds the queue full: it must get a BUSY frame, not a
            // silent drop and not an indefinite stall.
            let mut c = TcpStream::connect(addr).expect("connect c");
            let rc = roundtrip(&mut c, &Request::new(RequestClass::Stats, body.clone()))
                .expect("c answered");
            assert!(
                matches!(rc, Response::Busy { retry_after_ms } if retry_after_ms > 0),
                "{rc:?}"
            );
            // Freeing A lets the worker pick up B, which is served
            // normally — and its STATS reflect the shed.
            drop(a);
            let mut b = b;
            let rb = roundtrip(&mut b, &Request::new(RequestClass::Stats, body))
                .expect("b served after a closed");
            match rb {
                Response::Stats { fields } => {
                    assert!(
                        fields.iter().any(|(k, v)| k == "busy_shed" && v == "1"),
                        "{fields:?}"
                    );
                }
                other => panic!("{other:?}"),
            }
        });
        let served = server.run().expect("serve");
        assert_eq!(served, 3);
        client.join().expect("client thread");
    }

    #[test]
    fn shutdown_handle_drains_gracefully() {
        let state = ServiceState::new(ServiceConfig::default());
        let server = Server::bind(
            ServeOptions {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
                max_conns: None,
                ..ServeOptions::default()
            },
            state,
        )
        .expect("bind loopback");
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle();
        let server_thread = std::thread::spawn(move || server.run());
        // A normal request completes before the drain.
        let mut stream = TcpStream::connect(addr).expect("connect");
        let body = render_hypergraph(&named::h2());
        let r = roundtrip(&mut stream, &Request::new(RequestClass::Shw, body.clone()))
            .expect("pre-drain roundtrip");
        assert!(matches!(r, Response::Width { .. }), "{r:?}");
        assert!(!handle.is_shutting_down());
        handle.shutdown();
        assert!(handle.is_shutting_down());
        // The accept loop stops and the idle connection is closed; the
        // server thread returns instead of serving forever.
        let accepted = server_thread.join().expect("server thread").expect("run");
        assert_eq!(accepted, 1);
        // The drained connection is gone: the next read sees EOF (or a
        // reset), not a hang.
        use std::io::Read as _;
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let mut buf = [0u8; 64];
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => {
                // Tolerated: a drain-time BUSY frame if the worker saw
                // the connection as never-served.
                let text = String::from_utf8_lossy(&buf[..n]).to_string();
                assert!(text.starts_with("BUSY"), "{text:?}");
            }
        }
    }
}
