//! The TCP front-end: a readiness-driven event loop, pipelined
//! persistent connections, a bounded worker pool, per-request overload
//! shedding, and graceful drain shutdown.
//!
//! One thread runs a `poll(2)` event loop over the (nonblocking)
//! listener, a self-wake pipe, and every accepted connection. Each
//! connection carries an incremental frame decoder
//! ([`crate::wire::FrameDecoder`]) feeding a per-connection request
//! sequence: clients may **pipeline** any number of request frames
//! (single or `BATCH`) without waiting for responses. Decoded requests
//! are handed to a fixed worker pool through a **bounded** ready-request
//! queue; workers dispatch against the shared [`ServiceState`] (whose
//! stripe locks provide all cross-connection synchronisation) under a
//! per-request [`Budget`] and post the encoded response back to the
//! event loop, which flushes responses **strictly in request order** per
//! connection — out-of-order completions park in a per-connection reorder
//! buffer until their turn. A malformed frame gets an `ERR` response in
//! its slot; only transport-level violations stop a connection's input.
//!
//! **Shedding:** when the ready-request queue is full, the overflowing
//! *request* (not the whole connection) is answered `BUSY
//! <retry-after-ms>` in its pipeline slot, before any solver work, and
//! the connection stays usable. Backpressure is bidirectional: a
//! connection whose response bytes back up past a high-water mark stops
//! being read until the client drains it.
//!
//! **Graceful drain:** [`Server::shutdown_handle`] hands out a
//! [`ShutdownHandle`] whose [`shutdown`](ShutdownHandle::shutdown) is a
//! single atomic store (async-signal-safe — `softhw-serve` calls it
//! from its SIGINT/SIGTERM handlers). The event loop notices within one
//! poll interval: it stops accepting, cancels every in-flight request's
//! [`Budget`] (long solves abort cooperatively and answer `BUSY`),
//! answers never-served connections with `BUSY` instead of silence,
//! flushes queued responses under a bounded grace period, and drains +
//! fsyncs the write-behind store channel before [`Server::run`] returns.

use crate::state::{ServiceState, BUSY_RETRY_MS};
use crate::wire::{
    write_frame, FrameDecoder, Request, Response, WireRequest, MAX_FRAME_LINES, MAX_LINE_BYTES,
};
use softhw_core::Budget;
use std::collections::{BTreeMap, HashMap};
use std::io::{self, BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// The event loop's poll timeout: how fast a drain request (an atomic
/// store, no wakeup of its own) is noticed while the loop is idle.
const POLL_INTERVAL_MS: i32 = 10;
/// Per-read socket timeout used by the blocking single-connection path
/// ([`handle_connection`]): the interval at which it re-checks the
/// shutdown flag while idle. Frame reads preserve partial progress
/// across these timeouts, so a slow client is not penalised.
const READ_POLL: Duration = Duration::from_millis(100);
/// Response bytes a connection may buffer before the loop stops reading
/// more requests from it (resumed as soon as the client drains).
const OUT_HIGH_WATER: usize = 1 << 20;
/// How long a draining server keeps flushing queued responses before
/// force-closing what remains.
const DRAIN_GRACE: Duration = Duration::from_secs(2);
/// Read chunk size for the event loop's nonblocking reads.
const READ_CHUNK: usize = 16 * 1024;

/// Minimal `poll(2)`/`pipe(2)` bindings. Raw `extern "C"` declarations
/// — the workspace deliberately takes no libc dependency (the precedent
/// is `softhw-serve`'s `signal` binding).
#[cfg(unix)]
mod sys {
    use std::io;
    use std::os::raw::{c_int, c_ulong};

    #[repr(C)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    const F_GETFL: c_int = 3;
    const F_SETFL: c_int = 4;
    #[cfg(target_os = "linux")]
    const O_NONBLOCK: c_int = 0o4000;
    #[cfg(not(target_os = "linux"))]
    const O_NONBLOCK: c_int = 0x0004;

    #[cfg(target_os = "linux")]
    type NFds = c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NFds = u32;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NFds, timeout: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
        fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    /// `poll(2)` over `fds`; `EINTR` reports as zero ready fds rather
    /// than an error (the loop re-polls immediately).
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: c_int) -> io::Result<usize> {
        // SAFETY: `fds` is a live `&mut [PollFd]` of initialized
        // entries for the whole call; the kernel reads/writes only
        // within the `fds.len()` entries the pointer+length describe.
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, timeout_ms) };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(n as usize)
    }

    /// A nonblocking self-wake pipe: workers write one byte to make an
    /// idle `poll` return immediately.
    pub struct WakePipe {
        rfd: c_int,
        wfd: c_int,
    }

    impl WakePipe {
        pub fn new() -> io::Result<WakePipe> {
            let mut fds = [0 as c_int; 2];
            // SAFETY: `fds` is a stack array of exactly the 2 c_ints
            // pipe(2) writes through the pointer; it outlives the call.
            if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
                return Err(io::Error::last_os_error());
            }
            let [rfd, wfd] = fds;
            for fd in fds {
                // SAFETY: `fd` is one of the two descriptors pipe(2)
                // just opened and neither has been closed; F_GETFL
                // takes no third argument.
                let flags = unsafe { fcntl(fd, F_GETFL) };
                // SAFETY: same open fd; F_SETFL's third argument is the
                // flag word, passed by value.
                if flags < 0 || unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
                    let e = io::Error::last_os_error();
                    // SAFETY: both fds are open (opened above, not yet
                    // closed on this error path) and owned by us; each
                    // is closed exactly once.
                    unsafe {
                        close(rfd);
                        close(wfd);
                    }
                    return Err(e);
                }
            }
            Ok(WakePipe { rfd, wfd })
        }

        pub fn read_fd(&self) -> c_int {
            self.rfd
        }

        pub fn write_fd(&self) -> c_int {
            self.wfd
        }

        /// Discards every pending wake byte.
        pub fn drain(&self) {
            let mut buf = [0u8; 256];
            loop {
                // SAFETY: `self.rfd` is the pipe's read end, owned by
                // this struct and open until Drop; `buf` is a live
                // stack buffer of exactly `buf.len()` writable bytes.
                let n = unsafe { read(self.rfd, buf.as_mut_ptr(), buf.len()) };
                if n <= 0 {
                    break;
                }
            }
        }
    }

    impl Drop for WakePipe {
        fn drop(&mut self) {
            // SAFETY: the struct owns both descriptors; Drop runs at
            // most once, so each fd is closed exactly once and never
            // used afterwards.
            unsafe {
                close(self.rfd);
                close(self.wfd);
            }
        }
    }

    /// Wakes the event loop. A full pipe (`EAGAIN`) is fine — the wake
    /// is already pending.
    pub fn wake(wfd: c_int) {
        let b = [1u8];
        // SAFETY: `wfd` is the pipe's write end, kept open for the
        // server's lifetime; `b` provides the 1 readable byte the call
        // names. write(2) is async-signal-safe, so waking from any
        // thread or handler context is sound.
        let _ = unsafe { write(wfd, b.as_ptr(), 1) };
    }
}

/// Server options; see field docs.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Bind address, e.g. `127.0.0.1:7401` (`:0` for an OS-picked port).
    pub addr: String,
    /// Request-handling worker threads.
    pub workers: usize,
    /// Stop after accepting this many connections (`None` = run
    /// forever). Used by smoke tests and benchmarks for clean shutdown.
    pub max_conns: Option<u64>,
    /// Bound on decoded requests queued for a free worker. A request
    /// arriving with the queue full is shed with `BUSY` in its pipeline
    /// slot instead of waiting (and instead of the event loop stalling);
    /// its connection stays open.
    pub queue_depth: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7401".to_string(),
            workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
            max_conns: None,
            queue_depth: 128,
        }
    }
}

/// Drain-shutdown state shared between the event loop, the workers,
/// and [`ShutdownHandle`]s: the stop flag plus the registry of
/// in-flight request budgets to cancel.
#[derive(Default)]
struct Drain {
    stop: AtomicBool,
    next_id: AtomicU64,
    inflight: Mutex<HashMap<u64, Budget>>,
}

impl Drain {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Registers an in-flight request's budget; the returned id
    /// deregisters it.
    fn register(&self, budget: Budget) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(id, budget);
        id
    }

    fn deregister(&self, id: u64) {
        self.inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&id);
    }

    /// Cancels every registered in-flight budget. Requests that
    /// register *after* this runs observe the stop flag themselves and
    /// self-cancel (see [`execute`]), closing the race.
    fn cancel_inflight(&self) {
        let inflight = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
        for budget in inflight.values() {
            budget.cancel();
        }
    }
}

/// A cloneable handle that asks a running [`Server`] to drain and stop.
#[derive(Clone)]
pub struct ShutdownHandle {
    drain: Arc<Drain>,
}

impl ShutdownHandle {
    /// Requests a graceful drain: stop accepting, cancel in-flight
    /// work, flush the store. This is a single atomic store —
    /// **async-signal-safe**, so it may be called from a SIGINT/SIGTERM
    /// handler. The heavy lifting (budget cancellation, worker join,
    /// store fsync) happens on the server's own threads.
    pub fn shutdown(&self) {
        self.drain.stop.store(true, Ordering::SeqCst);
    }

    /// True once a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.drain.stopping()
    }
}

/// A bound listener plus the shared state, ready to run.
pub struct Server {
    listener: TcpListener,
    state: ServiceState,
    opts: ServeOptions,
    drain: Arc<Drain>,
}

impl Server {
    /// Binds the listener. The state is owned by the server and shared
    /// by reference with the scoped workers — no leak, no `Arc`.
    pub fn bind(opts: ServeOptions, state: ServiceState) -> io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        Ok(Server {
            listener,
            state,
            opts,
            drain: Arc::new(Drain::default()),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can request a graceful drain of this server while
    /// [`Server::run`] owns it (e.g. from a signal handler or another
    /// thread).
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            drain: Arc::clone(&self.drain),
        }
    }

    /// Runs the event loop until `max_conns` connections were accepted
    /// *and drained*, a [`ShutdownHandle`] fires, or forever; returns
    /// the number of connections accepted. Worker panics are
    /// *contained*: request execution runs under `catch_unwind`, so a
    /// panicking handler (a solver invariant the hardened paths did not
    /// cover) degrades to an `ERR internal` response in that request's
    /// pipeline slot — the connection lives on and the pool never
    /// shrinks. State locks recover from poisoning (a cache poisoned
    /// mid-mutation at worst degrades to the cold recompute paths).
    /// Before returning, the write-behind store channel (if any) is
    /// drained and fsynced.
    pub fn run(self) -> io::Result<u64> {
        self.run_state().map(|(accepted, _)| accepted)
    }

    /// [`Server::run`], additionally handing the (now quiescent)
    /// [`ServiceState`] back to the caller — `softhw-serve` uses this
    /// to dump the slow-query log on shutdown.
    pub fn run_state(self) -> io::Result<(u64, ServiceState)> {
        let accepted = run_event_loop(&self.listener, &self.state, &self.drain, &self.opts)?;
        // Workers are joined: flush the write-behind store channel so
        // every acknowledged result is on disk before run() returns.
        self.state.sync_store();
        Ok((accepted, self.state))
    }
}

/// A decoded request frame on its way to the worker pool.
struct Job {
    conn_id: u64,
    seq: u64,
    /// Trace id minted by the event loop: `(conn_id << 32) | seq`.
    trace: u64,
    /// When the event loop queued this job (queue-wait metric).
    submitted: Instant,
    lines: Vec<String>,
}

/// A finished response on its way back to the event loop.
struct Completion {
    conn_id: u64,
    seq: u64,
    /// When the worker finished (reorder-dwell metric).
    finished: Instant,
    bytes: String,
}

/// Per-connection event-loop state: the socket, the incremental frame
/// decoder, the in-order response assembly line.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Encoded response bytes queued for the socket.
    out: Vec<u8>,
    /// How much of `out` is already written.
    out_pos: usize,
    /// Sequence number assigned to the next decoded request frame.
    next_seq: u64,
    /// The response sequence the socket gets next — responses always
    /// flush in request order.
    next_write: u64,
    /// Completed responses that arrived out of order, with when each
    /// finished (reorder-dwell metric).
    pending: BTreeMap<u64, (String, Instant)>,
    /// Requests handed to workers (or the shed path) not yet completed.
    inflight: usize,
    /// Input has ended: client EOF or a transport violation.
    read_closed: bool,
    /// Stop decoding frames; just drain and discard input bytes (a
    /// draining server, or a connection that committed a protocol
    /// violation but still has responses to deliver).
    discard_input: bool,
    /// During a drain: this connection had undelivered responses, so
    /// half-close and wait briefly for the client's EOF instead of
    /// closing outright (an immediate close could RST the responses
    /// away).
    linger_on_close: bool,
    /// The write side was shut down while lingering.
    lingering: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            decoder: FrameDecoder::new(),
            out: Vec::new(),
            out_pos: 0,
            next_seq: 0,
            next_write: 0,
            pending: BTreeMap::new(),
            inflight: 0,
            read_closed: false,
            discard_input: false,
            linger_on_close: false,
            lingering: false,
        }
    }

    fn wants_write(&self) -> bool {
        self.out_pos < self.out.len()
    }

    fn wants_read(&self) -> bool {
        !self.read_closed && (self.discard_input || self.out.len() - self.out_pos < OUT_HIGH_WATER)
    }

    /// Nothing left to produce or deliver on this connection.
    fn idle(&self) -> bool {
        self.inflight == 0 && self.pending.is_empty() && !self.wants_write()
    }

    /// Parks a completed response at its sequence slot and moves every
    /// now-contiguous response into the write buffer, recording how
    /// long each dwelt in the reorder buffer (atomics only — this runs
    /// on the event loop).
    fn queue_response(&mut self, seq: u64, bytes: String, finished: Instant, state: &ServiceState) {
        self.pending.insert(seq, (bytes, finished));
        while let Some((b, arrived)) = self.pending.remove(&self.next_write) {
            state.note_reorder_dwell(arrived.elapsed().as_micros().min(u64::MAX as u128) as u64);
            self.out.extend_from_slice(b.as_bytes());
            self.next_write += 1;
        }
    }

    /// Writes as much buffered output as the socket accepts right now.
    fn flush(&mut self) -> io::Result<()> {
        use std::io::Write as _;
        while self.out_pos < self.out.len() {
            let Some(chunk) = self.out.get(self.out_pos..) else {
                break;
            };
            match self.stream.write(chunk) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        } else if self.out_pos > (1 << 16) {
            // Compact so a long-lived pipelining connection cannot grow
            // the buffer by its already-written prefix.
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
        Ok(())
    }
}

/// Decodes and executes one request frame (single or batch) under its
/// budget, with drain registration. This is the whole per-request
/// policy, shared by the worker pool and the blocking
/// [`handle_connection`] path.
fn execute(lines: &[String], state: &ServiceState, drain: &Drain, trace: Option<u64>) -> Response {
    match WireRequest::decode(lines) {
        Ok(WireRequest::Single(req)) => {
            let budget = state.request_budget(&req);
            let id = drain.register(budget.clone());
            // A drain that fired between queueing and execution has
            // already swept the registry: observe it ourselves so the
            // request still aborts promptly.
            if drain.stopping() {
                budget.cancel();
            }
            let resp = state.handle_traced(&req, None, &budget, trace);
            drain.deregister(id);
            resp
        }
        Ok(WireRequest::Batch(batch)) => {
            let budget = state.batch_budget(&batch);
            let id = drain.register(budget.clone());
            if drain.stopping() {
                budget.cancel();
            }
            let resp = state.handle_batch_traced(&batch, None, &budget, trace);
            drain.deregister(id);
            resp
        }
        Err(e) => Response::error("parse", e),
    }
}

/// The worker→loop "a completion is ready" signal: a self-wake pipe
/// plus a coalescing flag, so a burst of completions between two loop
/// rounds costs one pipe write, not one per response.
#[cfg(unix)]
struct CompletionSignal {
    pipe: sys::WakePipe,
    pending: AtomicBool,
}

#[cfg(unix)]
impl CompletionSignal {
    /// Called by workers after sending on the completion channel.
    fn notify(&self) {
        if !self.pending.swap(true, Ordering::AcqRel) {
            sys::wake(self.pipe.write_fd());
        }
    }

    /// Called by the event loop each round, *before* draining the
    /// completion channel: a completion sent after this always buys a
    /// fresh pipe write, so the loop cannot sleep past it.
    fn rearm(&self) {
        self.pending.store(false, Ordering::Release);
    }
}

#[cfg(unix)]
fn worker_loop(
    jobs: &Mutex<mpsc::Receiver<Job>>,
    done: mpsc::Sender<Completion>,
    signal: &CompletionSignal,
    state: &ServiceState,
    drain: &Drain,
) {
    loop {
        // Holding the lock only for the recv keeps the pool
        // work-stealing: whichever worker is free next takes the next
        // request.
        let next = match jobs.lock() {
            Ok(guard) => guard.recv(),
            Err(poisoned) => poisoned.into_inner().recv(),
        };
        let Ok(job) = next else { break };
        state.note_queue_wait(job.submitted.elapsed().as_micros().min(u64::MAX as u128) as u64);
        let resp = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute(&job.lines, state, drain, Some(job.trace))
        }))
        .unwrap_or_else(|_| Response::error("internal", "request handler panicked"));
        let sent = done.send(Completion {
            conn_id: job.conn_id,
            seq: job.seq,
            finished: Instant::now(),
            bytes: resp.encode(),
        });
        if sent.is_err() {
            break; // event loop gone
        }
        signal.notify();
    }
}

/// The readiness-driven serving core. See the module docs for the
/// shape; this function owns every connection and the job queue sender,
/// and returns once the accept target is reached and drained (or a
/// shutdown completes).
#[cfg(unix)]
fn run_event_loop(
    listener: &TcpListener,
    state: &ServiceState,
    drain: &Drain,
    opts: &ServeOptions,
) -> io::Result<u64> {
    listener.set_nonblocking(true)?;
    let signal = CompletionSignal {
        pipe: sys::WakePipe::new()?,
        pending: AtomicBool::new(false),
    };
    let workers = opts.workers.max(1);
    let (job_tx, job_rx) = mpsc::sync_channel::<Job>(opts.queue_depth.max(1));
    let job_rx = Mutex::new(job_rx);
    let (done_tx, done_rx) = mpsc::channel::<Completion>();
    let mut result = Ok(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let done_tx = done_tx.clone();
            let job_rx = &job_rx;
            let signal = &signal;
            scope.spawn(move || worker_loop(job_rx, done_tx, signal, state, drain));
        }
        drop(done_tx);
        result = event_loop(listener, state, drain, opts, &signal, job_tx, &done_rx);
        // job_tx was dropped inside event_loop: the workers drain the
        // queue and exit; the scope joins them here.
    });
    result
}

/// One iteration's bookkeeping lives in locals; connections are keyed
/// by a monotonically assigned id (completions for already-closed
/// connections simply miss the map and are dropped).
#[cfg(unix)]
fn event_loop(
    listener: &TcpListener,
    state: &ServiceState,
    drain: &Drain,
    opts: &ServeOptions,
    signal: &CompletionSignal,
    job_tx: mpsc::SyncSender<Job>,
    done_rx: &mpsc::Receiver<Completion>,
) -> io::Result<u64> {
    use std::os::unix::io::AsRawFd;
    use sys::{POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_conn_id: u64 = 0;
    let mut accepted: u64 = 0;
    let mut accepting = true;
    let mut draining = false;
    let mut drain_deadline = None;

    loop {
        // Notice a drain request exactly once: stop accepting, cancel
        // in-flight budgets, stop decoding new frames, answer
        // never-served connections with BUSY instead of silence.
        if drain.stopping() && !draining {
            draining = true;
            accepting = false;
            drain.cancel_inflight();
            drain_deadline = Some(Instant::now() + DRAIN_GRACE);
            for conn in conns.values_mut() {
                conn.discard_input = true;
                if conn.next_seq == 0 {
                    state.note_busy_shed();
                    let busy = Response::Busy {
                        retry_after_ms: BUSY_RETRY_MS,
                    };
                    conn.out.extend_from_slice(busy.encode().as_bytes());
                }
                // Only connections with responses still to deliver need
                // the half-close linger; idle ones close outright.
                conn.linger_on_close =
                    conn.wants_write() || !conn.pending.is_empty() || conn.inflight > 0;
            }
        }
        if opts.max_conns.is_some_and(|m| accepted >= m) {
            accepting = false;
        }
        if !accepting && conns.is_empty() && (draining || opts.max_conns.is_some()) {
            break;
        }
        if draining && drain_deadline.is_some_and(|d: Instant| Instant::now() >= d) {
            // Grace expired: force-close what remains.
            for _ in conns.drain() {
                state.note_conn_closed();
            }
            break;
        }

        // Build this round's poll set: wake pipe, listener (while
        // accepting), then every connection with its readiness needs.
        let mut fds = Vec::with_capacity(2 + conns.len());
        fds.push(sys::PollFd {
            fd: signal.pipe.read_fd(),
            events: POLLIN,
            revents: 0,
        });
        let listener_slot = if accepting {
            fds.push(sys::PollFd {
                fd: listener.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
            Some(fds.len() - 1)
        } else {
            None
        };
        let mut order: Vec<(usize, u64)> = Vec::with_capacity(conns.len());
        for (&id, conn) in conns.iter() {
            let mut ev: i16 = 0;
            if conn.wants_read() {
                ev |= POLLIN;
            }
            if conn.wants_write() {
                ev |= POLLOUT;
            }
            order.push((fds.len(), id));
            fds.push(sys::PollFd {
                fd: conn.stream.as_raw_fd(),
                events: ev,
                revents: 0,
            });
        }
        sys::poll_fds(&mut fds, POLL_INTERVAL_MS)?;

        // 1. Route finished responses to their reorder buffers. The
        // completion channel is drained every round whether or not the
        // wake pipe fired, so a missed wake can only add latency, never
        // lose a response.
        if fds.first().is_some_and(|f| f.revents & POLLIN != 0) {
            signal.pipe.drain();
        }
        signal.rearm();
        while let Ok(c) = done_rx.try_recv() {
            if let Some(conn) = conns.get_mut(&c.conn_id) {
                conn.inflight -= 1;
                conn.queue_response(c.seq, c.bytes, c.finished, state);
            }
        }

        // 2. Accept whatever is pending (the listener is nonblocking).
        if let Some(slot) = listener_slot {
            if fds.get(slot).is_some_and(|f| f.revents & POLLIN != 0) {
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            accepted += 1;
                            let _ = stream.set_nodelay(true);
                            if stream.set_nonblocking(true).is_err() {
                                continue; // count it, but it cannot be served
                            }
                            state.note_conn_opened();
                            conns.insert(next_conn_id, Conn::new(stream));
                            next_conn_id += 1;
                            if opts.max_conns.is_some_and(|m| accepted >= m) {
                                break;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(_) => break, // transient; retry next round
                    }
                }
            }
        }

        // 3. Readable connections: pull bytes through the incremental
        // decoder and submit every completed frame to the worker queue
        // (or shed it with an in-slot BUSY).
        for &(slot, id) in &order {
            let Some(re) = fds.get(slot).map(|f| f.revents) else {
                continue;
            };
            if re & (POLLERR | POLLNVAL) != 0 {
                if let Some(_conn) = conns.remove(&id) {
                    state.note_conn_closed();
                }
                continue;
            }
            if re & (POLLIN | POLLHUP) != 0 {
                if let Some(conn) = conns.get_mut(&id) {
                    if !conn.read_closed {
                        on_readable(conn, id, state, &job_tx);
                    }
                }
            }
        }

        // 4. Flush and reap. Flushing runs opportunistically for every
        // connection with queued bytes (not only POLLOUT-ready ones):
        // a response queued this round usually fits the socket buffer
        // and goes out with no extra poll round-trip.
        conns.retain(|_, conn| {
            if conn.wants_write() && conn.flush().is_err() {
                state.note_conn_closed();
                return false;
            }
            let done = if draining {
                conn.idle() && (!conn.linger_on_close || conn.read_closed)
            } else {
                conn.read_closed && conn.idle()
            };
            if done {
                state.note_conn_closed();
                return false;
            }
            if draining && conn.idle() && conn.linger_on_close && !conn.lingering {
                // Everything delivered: half-close, then wait (bounded
                // by the drain grace) for the client's EOF so the final
                // frames cannot be RST away by unread input.
                let _ = conn.stream.shutdown(std::net::Shutdown::Write);
                conn.lingering = true;
            }
            true
        });
    }
    drop(job_tx);
    Ok(accepted)
}

/// Drains the socket's currently readable bytes into the frame decoder
/// and submits every completed frame. Called with `POLLIN`/`POLLHUP`
/// set; reads until `WouldBlock`, EOF, error, or the connection's
/// output backpressure threshold.
#[cfg(unix)]
fn on_readable(conn: &mut Conn, id: u64, state: &ServiceState, job_tx: &mpsc::SyncSender<Job>) {
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        match io::Read::read(&mut conn.stream, &mut chunk) {
            Ok(0) => {
                conn.read_closed = true;
                return;
            }
            Ok(n) => {
                if conn.discard_input {
                    continue;
                }
                let mut frames = Vec::new();
                if conn.decoder.push(chunk.get(..n).unwrap_or(&[]), &mut frames).is_err() {
                    // Protocol violation: take no more input, but still
                    // deliver the responses already owed.
                    conn.read_closed = true;
                    conn.discard_input = true;
                }
                for lines in frames {
                    submit(conn, id, lines, state, job_tx);
                }
                if conn.read_closed || !conn.wants_read() {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.read_closed = true;
                conn.discard_input = true;
                return;
            }
        }
    }
}

/// Assigns the next pipeline slot to a decoded frame and hands it to
/// the worker pool; a full queue sheds the *request* with an in-slot
/// `BUSY`, leaving the connection open.
#[cfg(unix)]
fn submit(
    conn: &mut Conn,
    id: u64,
    lines: Vec<String>,
    state: &ServiceState,
    job_tx: &mpsc::SyncSender<Job>,
) {
    let seq = conn.next_seq;
    conn.next_seq += 1;
    conn.inflight += 1;
    state.note_pipeline_depth(conn.inflight as u64);
    match job_tx.try_send(Job {
        conn_id: id,
        seq,
        // The per-request trace id: connection id in the high half,
        // pipeline slot in the low half.
        trace: (id << 32) | (seq & 0xffff_ffff),
        submitted: Instant::now(),
        lines,
    }) {
        Ok(()) => {}
        Err(mpsc::TrySendError::Full(_)) | Err(mpsc::TrySendError::Disconnected(_)) => {
            // Queue full (overload) or workers gone (shutdown): shed
            // with BUSY in this request's response slot, never silence.
            state.note_busy_shed();
            conn.inflight -= 1;
            let busy = Response::Busy {
                retry_after_ms: BUSY_RETRY_MS,
            };
            conn.queue_response(seq, busy.encode(), Instant::now(), state);
        }
    }
}

/// Portable fallback for targets without `poll(2)`: the pre-pipelining
/// thread-per-connection loop (one worker thread serves one connection
/// at a time, frames strictly sequential per connection).
#[cfg(not(unix))]
fn run_event_loop(
    listener: &TcpListener,
    state: &ServiceState,
    drain: &Drain,
    opts: &ServeOptions,
) -> io::Result<u64> {
    let workers = opts.workers.max(1);
    let (tx, rx) = mpsc::sync_channel::<TcpStream>(opts.queue_depth.max(1));
    let rx = Mutex::new(rx);
    let mut accepted: u64 = 0;
    listener.set_nonblocking(true)?;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = match rx.lock() {
                    Ok(guard) => guard.recv(),
                    Err(poisoned) => poisoned.into_inner().recv(),
                };
                match next {
                    Ok(stream) => {
                        state.note_conn_opened();
                        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            serve_connection(stream, state, drain)
                        }));
                        state.note_conn_closed();
                    }
                    Err(_) => break,
                }
            });
        }
        loop {
            if drain.stopping() {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    accepted += 1;
                    let _ = stream.set_read_timeout(Some(READ_POLL));
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(mpsc::TrySendError::Full(mut stream))
                        | Err(mpsc::TrySendError::Disconnected(mut stream)) => {
                            let _ = stream.set_nodelay(true);
                            busy_then_close(&mut stream, state);
                        }
                    }
                    if opts.max_conns.is_some_and(|m| accepted >= m) {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(POLL_INTERVAL_MS as u64));
                }
                Err(_) => continue,
            }
        }
        drop(tx);
        if drain.stopping() {
            drain.cancel_inflight();
        }
    });
    Ok(accepted)
}

/// Writes a `BUSY` frame, counts it, and closes the connection without
/// tearing down the frame in flight: closing a socket whose receive
/// queue still holds the client's (never-read) request bytes sends an
/// RST, which can discard the `BUSY` before the client reads it. So:
/// half-close the write side, then drain pending input briefly; the
/// timeout bounds how long an absent client can hold us here.
fn busy_then_close(stream: &mut TcpStream, state: &ServiceState) {
    state.note_busy_shed();
    let busy = Response::Busy {
        retry_after_ms: BUSY_RETRY_MS,
    };
    if write_frame(stream, &busy.encode()).is_err() {
        return;
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut scratch = [0u8; 4096];
    for _ in 0..8 {
        match io::Read::read(stream, &mut scratch) {
            // EOF (client closed) or timeout (receive queue empty):
            // either way a close now carries no RST risk that matters.
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// What a draining-aware frame read produced.
enum NextFrame {
    Frame(Vec<String>),
    /// Clean EOF before any line: the client closed.
    Eof,
    /// A drain began while waiting for (or mid-way through) a frame.
    Draining,
    /// Transport error or protocol violation: drop the connection.
    Transport,
}

/// Reads one frame like [`crate::wire::read_frame`], but on a socket
/// with a read timeout: timeouts check the drain flag and *resume the
/// partial frame* — accumulated lines and the partial current line are
/// kept — so slow clients lose nothing while an idle [`handle_connection`]
/// still notices a shutdown within one [`READ_POLL`].
fn read_frame_draining(reader: &mut BufReader<TcpStream>, drain: &Drain) -> NextFrame {
    let mut lines: Vec<String> = Vec::new();
    let mut line = String::new();
    loop {
        // Bound what this pass may buffer; `line` already holds any
        // partial progress from before a timeout.
        let room = (MAX_LINE_BYTES + 1).saturating_sub(line.len()).max(1);
        let mut limited = io::Read::take(&mut *reader, room as u64);
        match limited.read_line(&mut line) {
            Ok(0) => {
                if lines.is_empty() && line.is_empty() {
                    return NextFrame::Eof;
                }
                return NextFrame::Transport; // EOF mid-frame
            }
            Ok(_) => {
                if line.len() > MAX_LINE_BYTES {
                    return NextFrame::Transport;
                }
                if !line.ends_with('\n') {
                    continue; // mid-line: accumulate (EOF resolves above)
                }
                let trimmed = line.trim_end_matches(['\n', '\r']);
                if trimmed == "%%" {
                    return NextFrame::Frame(lines);
                }
                let unstuffed = trimmed.strip_prefix("% ").unwrap_or(trimmed);
                lines.push(unstuffed.to_string());
                if lines.len() > MAX_FRAME_LINES {
                    return NextFrame::Transport;
                }
                line.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Socket read timeout: any bytes read before it are
                // already in `line`. Re-check the drain flag and wait
                // on.
                if drain.stopping() {
                    return NextFrame::Draining;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return NextFrame::Transport,
        }
    }
}

/// Serves one connection *sequentially*: frames in, frames out, until
/// EOF, a transport error, or a drain. During a drain, a connection
/// that was never served gets a `BUSY` frame (it would otherwise see
/// pure silence); an idle persistent connection is simply closed. The
/// pipelined event loop is the production path; this blocking variant
/// backs [`handle_connection`].
fn serve_connection(stream: TcpStream, state: &ServiceState, drain: &Drain) {
    // Nagle hurts small request/response frames; the read timeout is
    // what lets an idle read notice a drain.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut served_any = false;
    let drain_close = |writer: &mut TcpStream, served_any: bool| {
        if !served_any {
            busy_then_close(writer, state);
        }
    };
    loop {
        if drain.stopping() {
            return drain_close(&mut writer, served_any);
        }
        let lines = match read_frame_draining(&mut reader, drain) {
            NextFrame::Frame(lines) => lines,
            NextFrame::Eof => return,
            NextFrame::Draining => return drain_close(&mut writer, served_any),
            NextFrame::Transport => return,
        };
        let response = execute(&lines, state, drain, None);
        served_any = true;
        if write_frame(&mut writer, &response.encode()).is_err() {
            return;
        }
    }
}

/// Serves one connection against `state` with no drain coordination —
/// the embedding-friendly entry point (tests, single-connection tools).
/// Accepts the full V1 grammar including `BATCH` frames; requests are
/// handled strictly sequentially. [`Server::run`] serves connections
/// through the pipelined event loop instead.
pub fn handle_connection(stream: TcpStream, state: &ServiceState) {
    serve_connection(stream, state, &Drain::default());
}

/// Client-side convenience: sends one request over an existing stream
/// and reads the response frame.
pub fn roundtrip(stream: &mut TcpStream, req: &Request) -> io::Result<Response> {
    use std::io::Write as _;
    stream.write_all(req.encode().as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let lines = crate::wire::read_frame(&mut reader)?.ok_or_else(|| {
        io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed mid-reply")
    })?;
    Response::decode(&lines).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ServiceConfig;
    use crate::wire::{read_frame, RequestClass};
    use softhw_hypergraph::{named, render_hypergraph};

    #[test]
    fn end_to_end_over_tcp() {
        let state = ServiceState::new(ServiceConfig::default());
        let server = Server::bind(
            ServeOptions {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
                max_conns: Some(1),
                ..ServeOptions::default()
            },
            state,
        )
        .expect("bind loopback");
        let addr = server.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            let body = render_hypergraph(&named::h2());
            // Several requests on one connection, mixed classes.
            let r1 = roundtrip(&mut stream, &Request::new(RequestClass::Shw, body.clone()))
                .expect("shw roundtrip");
            assert!(matches!(r1, Response::Width { width: 2, .. }), "{r1:?}");
            let r2 = roundtrip(
                &mut stream,
                &Request::new(RequestClass::ShwLeq(1), body.clone()),
            )
            .expect("leq roundtrip");
            assert!(matches!(r2, Response::Decision { td: None, .. }), "{r2:?}");
            let r3 = roundtrip(&mut stream, &Request::new(RequestClass::Shw, "e1(a,"))
                .expect("error roundtrip");
            assert!(matches!(r3, Response::Error { .. }), "{r3:?}");
            // The V1 handshake answers on the same connection.
            let r4 = roundtrip(&mut stream, &Request::new(RequestClass::Hello, ""))
                .expect("hello roundtrip");
            assert!(matches!(r4, Response::Hello { .. }), "{r4:?}");
        });
        let served = server.run().expect("serve");
        assert_eq!(served, 1);
        client.join().expect("client thread");
    }

    #[test]
    fn full_queue_sheds_requests_with_busy_in_order() {
        // One worker, a one-deep ready queue: while the worker is held
        // by a slow solve, a second connection pipelines four STATS —
        // the first occupies the queue slot, the other three must shed
        // with BUSY *in their pipeline slots*, and the responses must
        // still arrive in request order.
        let state = ServiceState::new(ServiceConfig::default());
        let server = Server::bind(
            ServeOptions {
                addr: "127.0.0.1:0".to_string(),
                workers: 1,
                max_conns: Some(2),
                queue_depth: 1,
            },
            state,
        )
        .expect("bind loopback");
        let addr = server.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            use std::io::Write as _;
            // X holds the single worker: an exact SHW solve on a 24x24
            // grid cannot finish inside its 400ms deadline, so the
            // worker is busy for that long deterministically.
            let grid = render_hypergraph(&named::grid(24, 24));
            let mut x = TcpStream::connect(addr).expect("connect x");
            let mut slow = Request::new(RequestClass::Shw, grid);
            slow.deadline_ms = Some(400);
            x.write_all(slow.encode().as_bytes()).expect("send slow");
            x.flush().unwrap();
            std::thread::sleep(Duration::from_millis(150));
            // Y pipelines four STATS in one write. #1 takes the queue
            // slot; #2-#4 find it full and shed.
            let body = render_hypergraph(&named::h2());
            let stats = Request::new(RequestClass::Stats, body).encode();
            let mut y = TcpStream::connect(addr).expect("connect y");
            let burst = stats.repeat(4);
            y.write_all(burst.as_bytes()).expect("send burst");
            y.flush().unwrap();
            let mut reader = BufReader::new(y.try_clone().unwrap());
            let mut got = Vec::new();
            for _ in 0..4 {
                let lines = read_frame(&mut reader).expect("read").expect("frame");
                got.push(Response::decode(&lines).expect("decode"));
            }
            // In request order: the queued STATS answers first (after
            // the slow solve frees the worker), then the three sheds.
            match &got[0] {
                Response::Stats { fields } => {
                    // The sheds happened while the slow solve held the
                    // worker, so the queued STATS already sees them.
                    assert!(
                        fields.iter().any(|(k, v)| k == "busy_shed" && v == "3"),
                        "{fields:?}"
                    );
                }
                other => panic!("expected STATS first, got {other:?}"),
            }
            for r in &got[1..] {
                assert!(
                    matches!(r, Response::Busy { retry_after_ms } if *retry_after_ms > 0),
                    "{r:?}"
                );
            }
            // X's slow solve hit its deadline.
            let mut xr = BufReader::new(x.try_clone().unwrap());
            let lines = read_frame(&mut xr).expect("read x").expect("frame x");
            let rx = Response::decode(&lines).expect("decode x");
            assert!(matches!(rx, Response::Timeout), "{rx:?}");
        });
        let served = server.run().expect("serve");
        assert_eq!(served, 2);
        client.join().expect("client thread");
    }

    #[test]
    fn pipelined_mixed_frames_answer_in_request_order() {
        // A pipelined burst of singles and a BATCH on one connection:
        // every response arrives in request order and matches what the
        // classes individually produce.
        let state = ServiceState::new(ServiceConfig::default());
        let server = Server::bind(
            ServeOptions {
                addr: "127.0.0.1:0".to_string(),
                workers: 4,
                max_conns: Some(1),
                ..ServeOptions::default()
            },
            state,
        )
        .expect("bind loopback");
        let addr = server.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            use std::io::Write as _;
            let body = render_hypergraph(&named::h2());
            let frames = [
                Request::new(RequestClass::Shw, body.clone()).encode(),
                Request::new(RequestClass::HwLeq(3), body.clone()).encode(),
                crate::wire::BatchRequest::new(vec![
                    Request::new(RequestClass::ShwLeq(2), body.clone()),
                    Request::new(RequestClass::Hw, body.clone()),
                ])
                .encode(),
                Request::new(RequestClass::Shw, body.clone()).encode(),
            ];
            let burst: String = frames.iter().map(String::as_str).collect();
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.write_all(burst.as_bytes()).expect("send burst");
            stream.flush().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut got = Vec::new();
            for _ in 0..frames.len() {
                let lines = read_frame(&mut reader).expect("read").expect("frame");
                got.push(Response::decode(&lines).expect("decode"));
            }
            assert!(
                matches!(got[0], Response::Width { width: 2, .. }),
                "{:?}",
                got[0]
            );
            assert!(
                matches!(&got[1], Response::Decision { td: Some(_), .. }),
                "{:?}",
                got[1]
            );
            match &got[2] {
                Response::Batch { responses } => {
                    assert_eq!(responses.len(), 2);
                    assert!(matches!(
                        &responses[0],
                        Response::Decision { td: Some(_), .. }
                    ));
                    assert!(matches!(&responses[1], Response::Width { width: 3, .. }));
                }
                other => panic!("expected a batch response, got {other:?}"),
            }
            assert_eq!(got[3], got[0], "pipelined repeat must be byte-identical");
        });
        let served = server.run().expect("serve");
        assert_eq!(served, 1);
        client.join().expect("client thread");
    }

    #[test]
    fn shutdown_handle_drains_gracefully() {
        let state = ServiceState::new(ServiceConfig::default());
        let server = Server::bind(
            ServeOptions {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
                max_conns: None,
                ..ServeOptions::default()
            },
            state,
        )
        .expect("bind loopback");
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle();
        let server_thread = std::thread::spawn(move || server.run());
        // A normal request completes before the drain.
        let mut stream = TcpStream::connect(addr).expect("connect");
        let body = render_hypergraph(&named::h2());
        let r = roundtrip(&mut stream, &Request::new(RequestClass::Shw, body.clone()))
            .expect("pre-drain roundtrip");
        assert!(matches!(r, Response::Width { .. }), "{r:?}");
        assert!(!handle.is_shutting_down());
        handle.shutdown();
        assert!(handle.is_shutting_down());
        // The event loop stops and the idle connection is closed; the
        // server thread returns instead of serving forever.
        let accepted = server_thread.join().expect("server thread").expect("run");
        assert_eq!(accepted, 1);
        // The drained connection is gone: the next read sees EOF (or a
        // reset), not a hang.
        use std::io::Read as _;
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let mut buf = [0u8; 64];
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => {
                // Tolerated: a drain-time BUSY frame if the server saw
                // the connection as never-served.
                let text = String::from_utf8_lossy(&buf[..n]).to_string();
                assert!(text.starts_with("BUSY"), "{text:?}");
            }
        }
    }
}
