//! The TCP front-end: a listener, a bounded worker pool, persistent
//! connections.
//!
//! Connections are fanned out to a fixed pool of `std::thread::scope`
//! workers through an mpsc channel (the same no-external-deps threading
//! the `parallel` feature uses for solver fan-outs). Each connection
//! carries any number of request frames; a worker reads a frame,
//! dispatches it against the shared [`ServiceState`] (whose stripe locks
//! provide all cross-connection synchronisation), writes the response
//! frame, and loops until the client closes. A malformed frame gets an
//! `ERR` response on the same connection; only transport errors drop it.

use crate::state::ServiceState;
use crate::wire::{read_frame, write_frame, Request, Response};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::Mutex;

/// Server options; see field docs.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Bind address, e.g. `127.0.0.1:7401` (`:0` for an OS-picked port).
    pub addr: String,
    /// Connection-handling worker threads.
    pub workers: usize,
    /// Stop after accepting this many connections (`None` = run
    /// forever). Used by smoke tests and benchmarks for clean shutdown.
    pub max_conns: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7401".to_string(),
            workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
            max_conns: None,
        }
    }
}

/// A bound listener plus the shared state, ready to run.
pub struct Server {
    listener: TcpListener,
    state: ServiceState,
    opts: ServeOptions,
}

impl Server {
    /// Binds the listener. The state is owned by the server and shared
    /// by reference with the scoped workers — no leak, no `Arc`.
    pub fn bind(opts: ServeOptions, state: ServiceState) -> io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        Ok(Server {
            listener,
            state,
            opts,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept loop: runs until `max_conns` connections were accepted (or
    /// forever), returning the number of connections served. Worker
    /// panics are *contained*: `handle_connection` runs under
    /// `catch_unwind`, so a panicking handler (a solver invariant the
    /// hardened paths did not cover) kills only its own connection —
    /// the worker keeps pulling from the queue, the pool never shrinks,
    /// and the scope join at shutdown does not re-raise. State locks
    /// recover from poisoning (and a cache poisoned mid-mutation at
    /// worst degrades to the cold recompute paths).
    pub fn run(self) -> io::Result<u64> {
        let workers = self.opts.workers.max(1);
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Mutex::new(rx);
        let state = &self.state;
        let mut accepted: u64 = 0;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // Holding the lock only for the recv keeps the pool
                    // work-stealing: whichever worker is free next takes
                    // the next connection.
                    let next = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(poisoned) => poisoned.into_inner().recv(),
                    };
                    match next {
                        Ok(stream) => {
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                handle_connection(stream, state)
                            }));
                        }
                        Err(_) => break, // channel closed: shutting down
                    }
                });
            }
            for conn in self.listener.incoming() {
                let stream = match conn {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                accepted += 1;
                if tx.send(stream).is_err() {
                    break;
                }
                if self.opts.max_conns.is_some_and(|m| accepted >= m) {
                    break;
                }
            }
            drop(tx); // unblock workers
        });
        Ok(accepted)
    }
}

/// Serves one connection: frames in, frames out, until EOF or a
/// transport error.
pub fn handle_connection(stream: TcpStream, state: &ServiceState) {
    // Nagle hurts small request/response frames.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let lines = match read_frame(&mut reader) {
            Ok(Some(lines)) => lines,
            Ok(None) => return, // clean EOF
            Err(_) => return,   // transport error / oversized frame
        };
        let response = match Request::decode(&lines) {
            Ok(req) => state.handle(&req),
            Err(e) => Response::error("parse", e),
        };
        if write_frame(&mut writer, &response.encode()).is_err() {
            return;
        }
    }
}

/// Client-side convenience: sends one request over an existing stream
/// and reads the response frame.
pub fn roundtrip(stream: &mut TcpStream, req: &Request) -> io::Result<Response> {
    use std::io::Write as _;
    stream.write_all(req.encode().as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let lines = read_frame(&mut reader)?.ok_or_else(|| {
        io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed mid-reply")
    })?;
    Response::decode(&lines).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ServiceConfig;
    use crate::wire::RequestClass;
    use softhw_hypergraph::{named, render_hypergraph};

    #[test]
    fn end_to_end_over_tcp() {
        let state = ServiceState::new(ServiceConfig::default());
        let server = Server::bind(
            ServeOptions {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
                max_conns: Some(1),
            },
            state,
        )
        .expect("bind loopback");
        let addr = server.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            let body = render_hypergraph(&named::h2());
            // Several requests on one connection, mixed classes.
            let r1 = roundtrip(&mut stream, &Request::new(RequestClass::Shw, body.clone()))
                .expect("shw roundtrip");
            assert!(matches!(r1, Response::Width { width: 2, .. }), "{r1:?}");
            let r2 = roundtrip(
                &mut stream,
                &Request::new(RequestClass::ShwLeq(1), body.clone()),
            )
            .expect("leq roundtrip");
            assert!(matches!(r2, Response::Decision { td: None, .. }), "{r2:?}");
            let r3 = roundtrip(&mut stream, &Request::new(RequestClass::Shw, "e1(a,"))
                .expect("error roundtrip");
            assert!(matches!(r3, Response::Error { .. }), "{r3:?}");
        });
        let served = server.run().expect("serve");
        assert_eq!(served, 1);
        client.join().expect("client thread");
    }
}
