//! The service wire format: newline-framed requests and responses.
//!
//! Every frame is a header line, zero or more body lines, and a `%%`
//! terminator line. Body lines beginning with `%` (HyperBench comments)
//! are *stuffed* on the wire — the encoder prefixes them with `% ` and
//! the reader strips it — so no schema content, not even a comment line
//! that is literally `%%`, can collide with the terminator. The format
//! is human-typable (`nc` is a usable client; just don't start typed
//! body lines with a bare `%`) but the decomposition payload is
//! machine-dense: a
//! [`TdFrame`] is a flat framing of deduplicated **bag words** (an
//! [`ArenaSnapshot`] — every distinct bag once, `words_per_bag` `u64`s
//! back to back in id order, hex on the wire) plus a **node table** of
//! `(parent, bag-id)` pairs in preorder. The arena's dense `u32` ids do
//! all the work: nodes reference bags by index, equal bags are framed
//! once, and decoding is two linear passes with no name resolution.
//!
//! This is protocol revision [`PROTOCOL_VERSION`] (`V1`). The version
//! is advertised through the opt-in `HELLO` verb — a zero-body request
//! answered with `OK HELLO proto=V1 verbs=…` — rather than an
//! unsolicited banner, so pre-`V1` clients that write a request and
//! read exactly one response never desynchronise. Future verbs gate on
//! the advertised set.
//!
//! ```text
//! request  := header-line body-line* "%%"
//! header   := class-tokens ["DEADLINE" ms] ["sql"]
//! class    := "SHW"
//!           | "SHW_LEQ" k
//!           | "HW" | "HW_LEQ" k
//!           | "BEST" eval k                  eval ∈ trivial|concov|shallow:<d>
//!           | "STATS" ["SLOW"]               — SLOW dumps the slow-query log
//!           | "HELLO"                        — protocol/verb discovery
//!           | "METRICS"                      — Prometheus-style exposition
//! body     := HyperBench schema text, or (with "sql") a SQL query
//!
//! batch    := "BATCH" n ["DEADLINE" ms] item*n "%%"
//! item     := "@" class-tokens ["sql"] "lines=" m body-line*m
//!
//! response := ("OK" class key=value* | "ERR" kind message
//!              | "TIMEOUT" | "BUSY" retry-after-ms) td-frame? "%%"
//! metrics  := "OK METRICS" exposition-line* "%%"   — text/plain samples
//! slowresp := "OK SLOW" "lines=" n slow-line*n "%%"
//! batchresp:= "OK BATCH" "n=" k ("@ lines=" m response-lines*m)*k "%%"
//! td-frame := "TD" nodes=<n> bags=<b> universe=<u> words=<w>
//!             ("A" hex-word{w})*b        — bag words, id = line order
//!             ("N" (parent|"-") bag-id)*n — preorder node table
//! ```
//!
//! A `BATCH n` frame carries `n` requests (each an `@` item whose body
//! spans exactly the declared `lines=<m>` following lines — counted
//! scoping, so no separator can collide with schema text) and is
//! answered by **one** `OK BATCH` frame containing the `n` sub-responses
//! in request order. Stripping the `OK BATCH n=…` header and the
//! `@ lines=…` separators from a batch response yields byte-for-byte
//! the concatenation of the `n` single-request responses minus their
//! `%%` terminators. The whole batch shares a single `DEADLINE` budget
//! (per-item deadlines are not permitted); a budget that trips mid-batch
//! answers the remaining items `TIMEOUT`.
//!
//! `DEADLINE <ms>` caps the server-side compute time of the request: a
//! request whose solve outlives its deadline is answered with a bare
//! `TIMEOUT` frame (the worker aborts cooperatively and its caches stay
//! warm and consistent — a retry is safe and by-construction
//! bit-identical). `BUSY <retry-after-ms>` is overload shedding: the
//! server's bounded work queue is full, nothing was computed, and the
//! client should back off for roughly the hinted milliseconds before
//! retrying (`softhw-cli --connect` does this automatically).
//!
//! `STATS` responses are an open `key=value` set: servers may add rows
//! (per-stripe load/evictions, result-cache and store counters — see
//! `state.rs`) and clients must parse fields they do not recognise
//! generically. The decoder here does exactly that, which is what keeps
//! the frame backward-parseable as the set grows.

use softhw_core::td::TreeDecomposition;
use softhw_hypergraph::{ArenaSnapshot, BagArena};
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};

/// Hard ceiling on body lines per frame (a malformed or hostile client
/// must not make the server buffer unboundedly).
pub const MAX_FRAME_LINES: usize = 100_000;
/// Hard ceiling on a single frame line's byte length.
pub const MAX_LINE_BYTES: usize = 1 << 20;
/// The protocol revision this codec speaks, advertised by `OK HELLO`.
pub const PROTOCOL_VERSION: &str = "V1";
/// The verbs this protocol revision serves, advertised by `OK HELLO`
/// (comma-separated, stable order). Clients gate new verbs on this set
/// instead of probing with requests that older servers reject.
pub const PROTOCOL_VERBS: &str = "SHW,SHW_LEQ,HW,HW_LEQ,BEST,STATS,BATCH,HELLO,METRICS";

/// A malformed frame (decode-side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What was malformed.
    pub message: String,
}

impl WireError {
    fn new(message: impl Into<String>) -> Self {
        WireError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed frame: {}", self.message)
    }
}

impl std::error::Error for WireError {}

/// Preference evaluator selector of a `BEST` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalKind {
    /// Any CTD (Algorithm 1 through the Algorithm 2 engine).
    Trivial,
    /// `ConCov`: every bag has a connected edge cover of size ≤ k.
    ConCov,
    /// `ShallowCyc_d`: cyclic bags only within depth `d`; prefers
    /// shallower cyclicity.
    Shallow(i64),
}

impl EvalKind {
    /// The wire token of the evaluator (`trivial`, `concov`,
    /// `shallow:<d>`).
    pub fn token(&self) -> String {
        match self {
            EvalKind::Trivial => "trivial".into(),
            EvalKind::ConCov => "concov".into(),
            EvalKind::Shallow(d) => format!("shallow:{d}"),
        }
    }

    fn parse(tok: &str) -> Result<EvalKind, WireError> {
        if tok == "trivial" {
            return Ok(EvalKind::Trivial);
        }
        if tok == "concov" {
            return Ok(EvalKind::ConCov);
        }
        if let Some(d) = tok.strip_prefix("shallow:") {
            let d: i64 = d
                .parse()
                .map_err(|_| WireError::new(format!("bad shallow depth {d:?}")))?;
            return Ok(EvalKind::Shallow(d));
        }
        Err(WireError::new(format!("unknown evaluator {tok:?}")))
    }
}

/// What a request asks of the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestClass {
    /// Exact `shw` with witness.
    Shw,
    /// Decide `shw ≤ k`, witness on accept.
    ShwLeq(usize),
    /// Exact `hw` with witness.
    Hw,
    /// Decide `hw ≤ k`, witness on accept.
    HwLeq(usize),
    /// Algorithm 2: best CTD over `Soft_{H,k}` under an evaluator.
    Best(EvalKind, usize),
    /// Structural + cache statistics, no decomposition.
    Stats,
    /// Slow-query log dump (`STATS SLOW`): no body, answered with the
    /// span trees of recent requests that exceeded `--slow-ms`.
    Slow,
    /// Protocol discovery: no body, answered `OK HELLO proto=… verbs=…`.
    Hello,
    /// Metrics exposition: no body, answered with a Prometheus-style
    /// text exposition assembled from the service metric registry.
    Metrics,
}

impl RequestClass {
    /// The wire name of the class (also used in `OK` response headers).
    pub fn name(&self) -> &'static str {
        match self {
            RequestClass::Shw => "SHW",
            RequestClass::ShwLeq(_) => "SHW_LEQ",
            RequestClass::Hw => "HW",
            RequestClass::HwLeq(_) => "HW_LEQ",
            RequestClass::Best(..) => "BEST",
            RequestClass::Stats => "STATS",
            RequestClass::Slow => "SLOW",
            RequestClass::Hello => "HELLO",
            RequestClass::Metrics => "METRICS",
        }
    }

    /// The class tokens as they appear on a header line (name plus any
    /// width/evaluator arguments).
    fn tokens(&self) -> String {
        match self {
            RequestClass::ShwLeq(k) | RequestClass::HwLeq(k) => format!("{} {k}", self.name()),
            RequestClass::Best(eval, k) => format!("BEST {} {k}", eval.token()),
            // SLOW is an argument of the STATS verb, not a verb itself.
            RequestClass::Slow => "STATS SLOW".to_string(),
            _ => self.name().to_string(),
        }
    }
}

/// How the request body encodes the schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BodyFormat {
    /// HyperBench plain-text hypergraph (the default).
    #[default]
    HyperBench,
    /// A SQL query; the schema is its query hypergraph (ast-format).
    Sql,
}

/// The verb of a request header line: either an ordinary request class
/// or the `BATCH n` envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderVerb {
    /// A single-request class (`SHW`, `HW_LEQ k`, `STATS`, …).
    Class(RequestClass),
    /// A batch envelope carrying `n` sub-requests.
    Batch(usize),
}

/// A parsed request header line — the one grammar shared by the
/// single-request and `BATCH` decode paths on the server and by the
/// client-side encoders: `verb`, then an optional `DEADLINE <ms>`
/// (accepted at any token position), then an optional trailing `sql`
/// body-format marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestHeader {
    /// What the frame asks for.
    pub verb: HeaderVerb,
    /// Per-request (or per-batch) compute deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// How the body is encoded.
    pub format: BodyFormat,
}

impl RequestHeader {
    /// Parses a header line (or the class tokens of a `BATCH` item).
    pub fn parse(line: &str) -> Result<RequestHeader, WireError> {
        let mut toks: Vec<&str> = line.split_whitespace().collect();
        let format = if toks.last() == Some(&"sql") {
            toks.pop();
            BodyFormat::Sql
        } else {
            BodyFormat::HyperBench
        };
        let deadline_ms = match toks.iter().position(|&t| t == "DEADLINE") {
            Some(pos) => {
                let Some(&ms_tok) = toks.get(pos + 1) else {
                    return Err(WireError::new("DEADLINE without milliseconds"));
                };
                let ms: u64 = ms_tok
                    .parse()
                    .map_err(|_| WireError::new(format!("bad deadline {ms_tok:?}")))?;
                toks.drain(pos..pos + 2);
                Some(ms)
            }
            None => None,
        };
        let parse_k = |tok: Option<&&str>| -> Result<usize, WireError> {
            let tok = tok.ok_or_else(|| WireError::new("missing width argument"))?;
            tok.parse()
                .map_err(|_| WireError::new(format!("bad width {tok:?}")))
        };
        let verb = match toks.first().copied() {
            Some("SHW") => HeaderVerb::Class(RequestClass::Shw),
            Some("SHW_LEQ") => HeaderVerb::Class(RequestClass::ShwLeq(parse_k(toks.get(1))?)),
            Some("HW") => HeaderVerb::Class(RequestClass::Hw),
            Some("HW_LEQ") => HeaderVerb::Class(RequestClass::HwLeq(parse_k(toks.get(1))?)),
            Some("BEST") => {
                let eval = EvalKind::parse(
                    toks.get(1)
                        .ok_or_else(|| WireError::new("missing evaluator"))?,
                )?;
                HeaderVerb::Class(RequestClass::Best(eval, parse_k(toks.get(2))?))
            }
            Some("STATS") => {
                // `STATS SLOW` selects the slow-query log dump; the SLOW
                // token is an argument of STATS (like a width `k`), not
                // a protocol verb of its own.
                if toks.get(1).copied().is_some_and(|t| t == "SLOW") {
                    HeaderVerb::Class(RequestClass::Slow)
                } else {
                    HeaderVerb::Class(RequestClass::Stats)
                }
            }
            Some("HELLO") => HeaderVerb::Class(RequestClass::Hello),
            Some("METRICS") => HeaderVerb::Class(RequestClass::Metrics),
            Some("BATCH") => {
                let n = toks
                    .get(1)
                    .ok_or_else(|| WireError::new("BATCH without a count"))?;
                let n: usize = n
                    .parse()
                    .map_err(|_| WireError::new(format!("bad batch count {n:?}")))?;
                HeaderVerb::Batch(n)
            }
            other => return Err(WireError::new(format!("unknown request class {other:?}"))),
        };
        Ok(RequestHeader {
            verb,
            deadline_ms,
            format,
        })
    }

    /// Serialises the header line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = match self.verb {
            HeaderVerb::Class(class) => class.tokens(),
            HeaderVerb::Batch(n) => format!("BATCH {n}"),
        };
        if let Some(ms) = self.deadline_ms {
            let _ = write!(out, " DEADLINE {ms}");
        }
        if self.format == BodyFormat::Sql {
            out.push_str(" sql");
        }
        out
    }
}

/// One service request: a class plus the schema body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// What to compute.
    pub class: RequestClass,
    /// How to read the body.
    pub format: BodyFormat,
    /// Per-request compute deadline in milliseconds (`DEADLINE <ms>` on
    /// the wire); `None` defers to the server's `--default-deadline`.
    pub deadline_ms: Option<u64>,
    /// The schema text (HyperBench or SQL).
    pub body: String,
}

impl Request {
    /// A HyperBench-format request.
    pub fn new(class: RequestClass, body: impl Into<String>) -> Request {
        Request {
            class,
            format: BodyFormat::HyperBench,
            deadline_ms: None,
            body: body.into(),
        }
    }

    /// Serialises the request frame (including the terminator).
    pub fn encode(&self) -> String {
        let header = RequestHeader {
            verb: HeaderVerb::Class(self.class),
            deadline_ms: self.deadline_ms,
            format: self.format,
        };
        let mut out = header.encode();
        out.push('\n');
        push_stuffed_body(&mut out, &self.body);
        out.push_str("%%\n");
        out
    }

    /// Decodes a request from frame lines (header first, no terminator).
    pub fn decode(lines: &[String]) -> Result<Request, WireError> {
        let header = lines.first().ok_or_else(|| WireError::new("empty frame"))?;
        let header = RequestHeader::parse(header)?;
        let HeaderVerb::Class(class) = header.verb else {
            return Err(WireError::new(
                "BATCH envelope where a single request was expected",
            ));
        };
        Ok(Request {
            class,
            format: header.format,
            deadline_ms: header.deadline_ms,
            body: lines.get(1..).unwrap_or(&[]).join("\n"),
        })
    }
}

/// Appends `body` line by line, stuffing lines that start with '%'
/// (HyperBench comments — including a comment line that is literally
/// `"%%"`) so they can never collide with the bare `%%` frame
/// terminator: on the wire every content line beginning with '%' starts
/// `"% "`, and `read_frame` strips the prefix back off.
fn push_stuffed_body(out: &mut String, body: &str) {
    for line in body.lines() {
        if line.starts_with('%') {
            out.push_str("% ");
        }
        out.push_str(line);
        out.push('\n');
    }
}

/// A `BATCH n` request: `n` sub-requests framed in one frame, answered
/// by one ordered [`Response::Batch`] frame, all solved under a single
/// shared `DEADLINE` budget. Per-item deadlines are rejected — the
/// batch *is* the deadline domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRequest {
    /// The shared compute deadline for the whole batch.
    pub deadline_ms: Option<u64>,
    /// The sub-requests, answered in this order.
    pub items: Vec<Request>,
}

impl BatchRequest {
    /// A batch over the given requests (any per-item deadline is
    /// dropped; set [`BatchRequest::deadline_ms`] for the shared one).
    pub fn new(items: Vec<Request>) -> BatchRequest {
        BatchRequest {
            deadline_ms: None,
            items,
        }
    }

    /// Serialises the batch frame (including the terminator). Each item
    /// is an `@` line carrying the class tokens and the exact body line
    /// count, followed by that many (stuffed) body lines — counted
    /// scoping, so schema content can never be mistaken for a
    /// separator.
    pub fn encode(&self) -> String {
        let header = RequestHeader {
            verb: HeaderVerb::Batch(self.items.len()),
            deadline_ms: self.deadline_ms,
            format: BodyFormat::HyperBench,
        };
        let mut out = header.encode();
        out.push('\n');
        for item in &self.items {
            let item_header = RequestHeader {
                verb: HeaderVerb::Class(item.class),
                deadline_ms: None,
                format: item.format,
            };
            let _ = writeln!(
                out,
                "@ {} lines={}",
                item_header.encode(),
                item.body.lines().count()
            );
            push_stuffed_body(&mut out, &item.body);
        }
        out.push_str("%%\n");
        out
    }

    /// Decodes a batch from frame lines (the `BATCH n` header first, no
    /// terminator).
    pub fn decode(lines: &[String]) -> Result<BatchRequest, WireError> {
        let header = lines.first().ok_or_else(|| WireError::new("empty frame"))?;
        let header = RequestHeader::parse(header)?;
        let HeaderVerb::Batch(n) = header.verb else {
            return Err(WireError::new("expected a BATCH envelope"));
        };
        // Cap the reservation by the frame size: a hostile `BATCH
        // 999999999` header must not pre-allocate for items that cannot
        // possibly be present.
        let mut items = Vec::with_capacity(n.min(lines.len()));
        let mut idx = 1;
        for i in 0..n {
            let item_line = lines
                .get(idx)
                .ok_or_else(|| WireError::new(format!("batch item {i} missing")))?;
            let rest = item_line
                .strip_prefix('@')
                .ok_or_else(|| WireError::new(format!("batch item {i}: expected an @ line")))?;
            let mut toks: Vec<&str> = rest.split_whitespace().collect();
            let m: usize = match toks.last().and_then(|t| t.strip_prefix("lines=")) {
                Some(m) => m
                    .parse()
                    .map_err(|_| WireError::new(format!("batch item {i}: bad line count")))?,
                None => {
                    return Err(WireError::new(format!(
                        "batch item {i}: missing lines= count"
                    )))
                }
            };
            toks.pop();
            let item_header = RequestHeader::parse(&toks.join(" "))?;
            let HeaderVerb::Class(class) = item_header.verb else {
                return Err(WireError::new(format!("batch item {i}: nested BATCH")));
            };
            if item_header.deadline_ms.is_some() {
                return Err(WireError::new(format!(
                    "batch item {i}: DEADLINE inside a batch item (use the batch header)"
                )));
            }
            let body_end = idx + 1 + m;
            if body_end > lines.len() {
                return Err(WireError::new(format!(
                    "batch item {i}: declared {m} body lines, frame has fewer"
                )));
            }
            items.push(Request {
                class,
                format: item_header.format,
                deadline_ms: None,
                body: lines.get(idx + 1..body_end).unwrap_or(&[]).join("\n"),
            });
            idx = body_end;
        }
        if idx != lines.len() {
            return Err(WireError::new("trailing lines after the last batch item"));
        }
        Ok(BatchRequest {
            deadline_ms: header.deadline_ms,
            items,
        })
    }
}

/// Any decodable request frame: a single request or a batch envelope.
/// This is what the server's dispatch decodes; clients encode the
/// variants directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireRequest {
    /// An ordinary single request.
    Single(Request),
    /// A `BATCH n` envelope.
    Batch(BatchRequest),
}

impl WireRequest {
    /// Decodes either frame kind by dispatching on the header verb.
    pub fn decode(lines: &[String]) -> Result<WireRequest, WireError> {
        let header = lines.first().ok_or_else(|| WireError::new("empty frame"))?;
        match RequestHeader::parse(header)?.verb {
            HeaderVerb::Batch(_) => Ok(WireRequest::Batch(BatchRequest::decode(lines)?)),
            HeaderVerb::Class(_) => Ok(WireRequest::Single(Request::decode(lines)?)),
        }
    }
}

/// A serialised tree decomposition: deduplicated bag words (an arena
/// snapshot) plus a `(parent, bag-id)` node table in preorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TdFrame {
    /// The vertex universe the bags are over.
    pub universe: usize,
    /// Every distinct bag's words, back to back in id order.
    pub snapshot: ArenaSnapshot,
    /// `(parent index, bag id)` per node, preorder; the root is node 0
    /// with no parent.
    pub nodes: Vec<(Option<u32>, u32)>,
}

impl TdFrame {
    /// Frames a decomposition over a `universe`-vertex hypergraph.
    pub fn from_td(td: &TreeDecomposition, universe: usize) -> TdFrame {
        let order = td.preorder();
        let mut new_id = vec![u32::MAX; td.num_nodes()];
        for (i, &u) in order.iter().enumerate() {
            if let Some(slot) = new_id.get_mut(u) {
                *slot = i as u32;
            }
        }
        let mut arena = BagArena::new(universe);
        let nodes = order
            .iter()
            .map(|&u| {
                let bag = arena.intern(td.bag(u));
                (td.parent(u).and_then(|p| new_id.get(p).copied()), bag.0)
            })
            .collect();
        TdFrame {
            universe,
            snapshot: arena.snapshot(),
            nodes,
        }
    }

    /// Reconstructs the decomposition. Fails on a corrupt frame (bag or
    /// parent references out of range, wrong preorder) instead of
    /// panicking. Decoding is the shared
    /// [`TreeDecomposition::from_bag_frame`] path, which the persistent
    /// store's witness records also go through.
    pub fn to_td(&self) -> Result<TreeDecomposition, WireError> {
        TreeDecomposition::from_bag_frame(self.universe, &self.snapshot, &self.nodes)
            .map_err(|e| WireError::new(e.message))
    }

    fn encode_into(&self, out: &mut String) {
        let _ = writeln!(
            out,
            "TD nodes={} bags={} universe={} words={}",
            self.nodes.len(),
            self.snapshot.len(),
            self.universe,
            self.snapshot.words_per_bag()
        );
        for i in 0..self.snapshot.len() {
            out.push('A');
            for w in self.snapshot.words(i) {
                let _ = write!(out, " {w:016x}");
            }
            out.push('\n');
        }
        for &(parent, bag) in &self.nodes {
            match parent {
                Some(p) => {
                    let _ = writeln!(out, "N {p} {bag}");
                }
                None => {
                    let _ = writeln!(out, "N - {bag}");
                }
            }
        }
    }

    /// Decodes the frame from its lines (the `TD` header plus `A`/`N`
    /// lines).
    fn decode(lines: &[String]) -> Result<TdFrame, WireError> {
        let header = lines
            .first()
            .ok_or_else(|| WireError::new("missing TD header"))?;
        let mut nodes_n = None;
        let mut bags_n = None;
        let mut universe = None;
        let mut words = None;
        for tok in header.split_whitespace().skip(1) {
            let (key, value) = tok
                .split_once('=')
                .ok_or_else(|| WireError::new(format!("bad TD field {tok:?}")))?;
            let value: usize = value
                .parse()
                .map_err(|_| WireError::new(format!("bad TD value {tok:?}")))?;
            match key {
                "nodes" => nodes_n = Some(value),
                "bags" => bags_n = Some(value),
                "universe" => universe = Some(value),
                "words" => words = Some(value),
                _ => return Err(WireError::new(format!("unknown TD field {key:?}"))),
            }
        }
        let (Some(nodes_n), Some(bags_n), Some(universe), Some(words)) =
            (nodes_n, bags_n, universe, words)
        else {
            return Err(WireError::new("incomplete TD header"));
        };
        if words != universe.div_ceil(64).max(1) {
            return Err(WireError::new("TD word width disagrees with universe"));
        }
        if lines.len() != 1 + bags_n + nodes_n {
            return Err(WireError::new("TD frame line count mismatch"));
        }
        let mut storage = Vec::with_capacity(bags_n * words);
        for line in lines.get(1..1 + bags_n).unwrap_or(&[]) {
            let mut toks = line.split_whitespace();
            if toks.next() != Some("A") {
                return Err(WireError::new("expected bag line"));
            }
            let mut count = 0;
            for t in toks {
                let w = u64::from_str_radix(t, 16)
                    .map_err(|_| WireError::new(format!("bad bag word {t:?}")))?;
                storage.push(w);
                count += 1;
            }
            if count != words {
                return Err(WireError::new("bag line with wrong word count"));
            }
        }
        let mut nodes = Vec::with_capacity(nodes_n);
        for line in lines.get(1 + bags_n..).unwrap_or(&[]) {
            let toks: Vec<&str> = line.split_whitespace().collect();
            let ["N", parent_tok, bag_tok] = toks[..] else {
                return Err(WireError::new("expected node line"));
            };
            let parent = if parent_tok == "-" {
                None
            } else {
                Some(
                    parent_tok
                        .parse()
                        .map_err(|_| WireError::new(format!("bad parent {parent_tok:?}")))?,
                )
            };
            let bag: u32 = bag_tok
                .parse()
                .map_err(|_| WireError::new(format!("bad bag id {bag_tok:?}")))?;
            nodes.push((parent, bag));
        }
        Ok(TdFrame {
            universe,
            snapshot: ArenaSnapshot { universe, storage },
            nodes,
        })
    }
}

/// One service response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Exact width (SHW / HW) with witness.
    Width {
        /// The request class name (`SHW` or `HW`).
        class: String,
        /// The computed width.
        width: usize,
        /// The witness decomposition.
        td: TdFrame,
    },
    /// A `≤ k` decision (SHW_LEQ / HW_LEQ / BEST), witness on accept.
    Decision {
        /// The request class name.
        class: String,
        /// Extra `key=value` fields (e.g. `eval`, `cost`).
        fields: Vec<(String, String)>,
        /// The width asked about.
        k: usize,
        /// The witness, present iff the answer is yes.
        td: Option<TdFrame>,
    },
    /// Statistics (`STATS`), flat `key=value` fields.
    Stats {
        /// The fields, in emission order.
        fields: Vec<(String, String)>,
    },
    /// The request's compute deadline expired before an answer was
    /// reached; the server's caches stay warm and a retry is safe.
    Timeout,
    /// The server shed the request before doing any work (bounded work
    /// queue full); the client should back off and retry.
    Busy {
        /// Suggested backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The request failed; `kind` is one of `parse`, `request`, `limit`,
    /// `internal`.
    Error {
        /// Failure category.
        kind: String,
        /// Human-readable detail (single line).
        message: String,
    },
    /// Protocol discovery (`HELLO`): flat `key=value` fields, at least
    /// `proto` and `verbs`.
    Hello {
        /// The fields, in emission order.
        fields: Vec<(String, String)>,
    },
    /// Metrics exposition (`METRICS`): Prometheus-style text samples,
    /// one per line, passed through verbatim (no line starts with `%`,
    /// so the framing never needs stuffing).
    Metrics {
        /// The exposition lines, in emission order.
        lines: Vec<String>,
    },
    /// Slow-query log dump (`STATS SLOW`): rendered span trees of recent
    /// requests that exceeded the server's `--slow-ms` threshold.
    Slow {
        /// The rendered entries (header + indented span lines each).
        lines: Vec<String>,
    },
    /// The ordered sub-responses of a `BATCH` request.
    Batch {
        /// One response per batch item, in request order.
        responses: Vec<Response>,
    },
}

impl Response {
    /// An error response with a sanitised single-line message.
    pub fn error(kind: &str, message: impl std::fmt::Display) -> Response {
        Response::Error {
            kind: kind.to_string(),
            message: message.to_string().replace('\n', " "),
        }
    }

    /// The `OK HELLO` frame this server revision answers with.
    pub fn hello() -> Response {
        Response::Hello {
            fields: vec![
                ("proto".to_string(), PROTOCOL_VERSION.to_string()),
                ("verbs".to_string(), PROTOCOL_VERBS.to_string()),
            ],
        }
    }

    /// Serialises the response frame (including the terminator).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        match self {
            Response::Width { class, width, td } => {
                let _ = writeln!(out, "OK {class} width={width}");
                td.encode_into(&mut out);
            }
            Response::Decision {
                class,
                fields,
                k,
                td,
            } => {
                let _ = write!(out, "OK {class} k={k}");
                for (key, value) in fields {
                    let _ = write!(out, " {key}={value}");
                }
                let _ = writeln!(out, " answer={}", if td.is_some() { "yes" } else { "no" });
                if let Some(td) = td {
                    td.encode_into(&mut out);
                }
            }
            Response::Stats { fields } => {
                out.push_str("OK STATS");
                for (key, value) in fields {
                    let _ = write!(out, " {key}={value}");
                }
                out.push('\n');
            }
            Response::Timeout => {
                out.push_str("TIMEOUT\n");
            }
            Response::Busy { retry_after_ms } => {
                let _ = writeln!(out, "BUSY {retry_after_ms}");
            }
            Response::Error { kind, message } => {
                let _ = writeln!(out, "ERR {kind} {message}");
            }
            Response::Hello { fields } => {
                out.push_str("OK HELLO");
                for (key, value) in fields {
                    let _ = write!(out, " {key}={value}");
                }
                out.push('\n');
            }
            Response::Metrics { lines } => {
                out.push_str("OK METRICS\n");
                for line in lines {
                    let _ = writeln!(out, "{line}");
                }
            }
            Response::Slow { lines } => {
                let _ = writeln!(out, "OK SLOW lines={}", lines.len());
                for line in lines {
                    let _ = writeln!(out, "{line}");
                }
            }
            Response::Batch { responses } => {
                let _ = writeln!(out, "OK BATCH n={}", responses.len());
                for resp in responses {
                    // A sub-response is its ordinary encoding minus the
                    // terminator, under an `@ lines=<m>` separator:
                    // stripping the envelope lines therefore yields the
                    // exact concatenation of the single-request frames
                    // (minus terminators), which is what the CI replay
                    // diffs against.
                    let encoded = resp.encode();
                    // Every `encode` ends with the terminator; if that
                    // invariant ever broke, framing the whole encoding
                    // is still well-formed (the count line is derived
                    // from the body actually written).
                    let body = encoded.strip_suffix("%%\n").unwrap_or(&encoded);
                    let _ = writeln!(out, "@ lines={}", body.lines().count());
                    out.push_str(body);
                }
            }
        }
        out.push_str("%%\n");
        out
    }

    /// Decodes a response from frame lines (no terminator).
    pub fn decode(lines: &[String]) -> Result<Response, WireError> {
        let header = lines.first().ok_or_else(|| WireError::new("empty frame"))?;
        if header.trim_end() == "TIMEOUT" {
            return Ok(Response::Timeout);
        }
        if let Some(rest) = header.strip_prefix("BUSY ") {
            let retry_after_ms: u64 = rest
                .trim()
                .parse()
                .map_err(|_| WireError::new(format!("bad BUSY backoff {rest:?}")))?;
            return Ok(Response::Busy { retry_after_ms });
        }
        if let Some(rest) = header.strip_prefix("ERR ") {
            let (kind, message) = rest.split_once(' ').unwrap_or((rest, ""));
            return Ok(Response::Error {
                kind: kind.to_string(),
                message: message.to_string(),
            });
        }
        let rest = header
            .strip_prefix("OK ")
            .ok_or_else(|| WireError::new(format!("bad response header {header:?}")))?;
        let mut toks = rest.split_whitespace();
        let class = toks
            .next()
            .ok_or_else(|| WireError::new("missing response class"))?
            .to_string();
        let mut fields: Vec<(String, String)> = Vec::new();
        for tok in toks {
            let (key, value) = tok
                .split_once('=')
                .ok_or_else(|| WireError::new(format!("bad response field {tok:?}")))?;
            fields.push((key.to_string(), value.to_string()));
        }
        let take = |fields: &mut Vec<(String, String)>, key: &str| -> Option<String> {
            let pos = fields.iter().position(|(k2, _)| k2 == key)?;
            Some(fields.remove(pos).1)
        };
        if class == "STATS" {
            return Ok(Response::Stats { fields });
        }
        if class == "HELLO" {
            return Ok(Response::Hello { fields });
        }
        if class == "METRICS" {
            return Ok(Response::Metrics {
                lines: lines.get(1..).unwrap_or(&[]).to_vec(),
            });
        }
        if class == "SLOW" {
            return Ok(Response::Slow {
                lines: lines.get(1..).unwrap_or(&[]).to_vec(),
            });
        }
        if class == "BATCH" {
            let n: usize = take(&mut fields, "n")
                .ok_or_else(|| WireError::new("missing batch count"))?
                .parse()
                .map_err(|_| WireError::new("bad batch count"))?;
            let mut responses = Vec::with_capacity(n.min(lines.len()));
            let mut idx = 1;
            for i in 0..n {
                let sep = lines
                    .get(idx)
                    .ok_or_else(|| WireError::new(format!("batch response {i} missing")))?;
                let m: usize = sep
                    .strip_prefix("@ lines=")
                    .ok_or_else(|| {
                        WireError::new(format!("batch response {i}: expected @ lines="))
                    })?
                    .parse()
                    .map_err(|_| WireError::new(format!("batch response {i}: bad line count")))?;
                let body_end = idx + 1 + m;
                if body_end > lines.len() {
                    return Err(WireError::new(format!(
                        "batch response {i}: declared {m} lines, frame has fewer"
                    )));
                }
                responses.push(Response::decode(lines.get(idx + 1..body_end).unwrap_or(&[]))?);
                idx = body_end;
            }
            if idx != lines.len() {
                return Err(WireError::new(
                    "trailing lines after the last batch response",
                ));
            }
            return Ok(Response::Batch { responses });
        }
        if class == "SHW" || class == "HW" {
            let width: usize = take(&mut fields, "width")
                .ok_or_else(|| WireError::new("missing width"))?
                .parse()
                .map_err(|_| WireError::new("bad width"))?;
            let td = TdFrame::decode(lines.get(1..).unwrap_or(&[]))?;
            return Ok(Response::Width { class, width, td });
        }
        let k: usize = take(&mut fields, "k")
            .ok_or_else(|| WireError::new("missing k"))?
            .parse()
            .map_err(|_| WireError::new("bad k"))?;
        let answer = take(&mut fields, "answer").ok_or_else(|| WireError::new("missing answer"))?;
        let td = match answer.as_str() {
            "yes" => Some(TdFrame::decode(lines.get(1..).unwrap_or(&[]))?),
            "no" => None,
            other => return Err(WireError::new(format!("bad answer {other:?}"))),
        };
        Ok(Response::Decision {
            class,
            fields,
            k,
            td,
        })
    }
}

/// Reads one frame's lines (header through the line before `%%`),
/// un-stuffing body lines (see [`Request::encode`]). Returns `Ok(None)`
/// on clean EOF before any line, an error mid-frame. Buffering is
/// byte-capped *during* the read — a line is never accumulated past
/// [`MAX_LINE_BYTES`], so a client streaming newline-free garbage
/// cannot grow server memory beyond the cap.
pub fn read_frame(reader: &mut impl BufRead) -> io::Result<Option<Vec<String>>> {
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        // `take` bounds how much read_line can buffer before we see it
        // (UFCS so the adaptor wraps the reference, not the reader).
        let mut limited = io::Read::take(&mut *reader, MAX_LINE_BYTES as u64 + 1);
        let n = limited.read_line(&mut line)?;
        if n == 0 {
            if lines.is_empty() {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "EOF mid-frame",
            ));
        }
        if line.len() > MAX_LINE_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame line too long",
            ));
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed == "%%" {
            return Ok(Some(lines));
        }
        // Un-stuff: encoders prefix "% " to any line starting with '%',
        // which is what makes the bare "%%" terminator unambiguous.
        let unstuffed = trimmed.strip_prefix("% ").unwrap_or(trimmed);
        lines.push(unstuffed.to_string());
        if lines.len() > MAX_FRAME_LINES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame has too many lines",
            ));
        }
    }
}

/// Writes a pre-encoded frame and flushes it.
pub fn write_frame(writer: &mut impl Write, frame: &str) -> io::Result<()> {
    writer.write_all(frame.as_bytes())?;
    writer.flush()
}

/// Incremental frame decoder over raw bytes, for nonblocking sockets:
/// feed it whatever chunk `read(2)` produced and collect every frame
/// the chunk completed. Mirrors [`read_frame`] exactly — the same `% `
/// un-stuffing, the same `\r\n` tolerance, and the same
/// [`MAX_LINE_BYTES`] / [`MAX_FRAME_LINES`] caps enforced on the
/// *partial* state, so a peer streaming newline-free garbage cannot
/// grow server memory past the caps no matter how the bytes are
/// chunked.
#[derive(Default)]
pub struct FrameDecoder {
    /// Un-stuffed lines of the frame currently being accumulated.
    lines: Vec<String>,
    /// Bytes of the current line, up to (not including) its `\n`.
    partial: Vec<u8>,
}

impl FrameDecoder {
    /// A fresh decoder with no partial state.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// True while a frame is partially accumulated — an EOF here is the
    /// `EOF mid-frame` protocol violation, not a clean close.
    pub fn mid_frame(&self) -> bool {
        !self.lines.is_empty() || !self.partial.is_empty()
    }

    /// Consumes `data`, appending every frame it completes to `out`
    /// (as the un-stuffed line lists [`read_frame`] would return). An
    /// `Err` is a protocol violation — oversized line, oversized frame,
    /// non-UTF-8 line — after which the connection should be dropped.
    pub fn push(&mut self, data: &[u8], out: &mut Vec<Vec<String>>) -> io::Result<()> {
        let too_long = || io::Error::new(io::ErrorKind::InvalidData, "frame line too long");
        let mut rest = data;
        while let Some(nl) = rest.iter().position(|&b| b == b'\n') {
            let Some((line, tail)) = rest.split_at_checked(nl) else {
                break;
            };
            self.partial.extend_from_slice(line);
            rest = tail.get(1..).unwrap_or(&[]);
            if self.partial.len() > MAX_LINE_BYTES {
                return Err(too_long());
            }
            let mut bytes = std::mem::take(&mut self.partial);
            while bytes.last() == Some(&b'\r') {
                bytes.pop();
            }
            let line = String::from_utf8(bytes).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, "frame line is not UTF-8")
            })?;
            if line == "%%" {
                out.push(std::mem::take(&mut self.lines));
                continue;
            }
            let unstuffed = line.strip_prefix("% ").unwrap_or(&line);
            self.lines.push(unstuffed.to_string());
            if self.lines.len() > MAX_FRAME_LINES {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "frame has too many lines",
                ));
            }
        }
        self.partial.extend_from_slice(rest);
        if self.partial.len() > MAX_LINE_BYTES {
            return Err(too_long());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softhw_core::shw;
    use softhw_hypergraph::named;

    #[test]
    fn request_roundtrip() {
        for class in [
            RequestClass::Shw,
            RequestClass::ShwLeq(2),
            RequestClass::Hw,
            RequestClass::HwLeq(3),
            RequestClass::Best(EvalKind::Trivial, 2),
            RequestClass::Best(EvalKind::ConCov, 2),
            RequestClass::Best(EvalKind::Shallow(1), 2),
            RequestClass::Stats,
        ] {
            let req = Request::new(class, "e1(a,b),\ne2(b,c).");
            let encoded = req.encode();
            let lines: Vec<String> = encoded
                .lines()
                .take_while(|l| *l != "%%")
                .map(String::from)
                .collect();
            assert_eq!(Request::decode(&lines).unwrap(), req, "{class:?}");
        }
        let mut sql = Request::new(RequestClass::Shw, "SELECT MIN(r.a) FROM r");
        sql.format = BodyFormat::Sql;
        let lines: Vec<String> = sql
            .encode()
            .lines()
            .take_while(|l| *l != "%%")
            .map(String::from)
            .collect();
        assert_eq!(Request::decode(&lines).unwrap(), sql);
    }

    #[test]
    fn deadline_token_roundtrips_in_every_position() {
        // DEADLINE composes with every class, with and without sql.
        for class in [
            RequestClass::Shw,
            RequestClass::ShwLeq(2),
            RequestClass::Best(EvalKind::Shallow(1), 2),
            RequestClass::Stats,
        ] {
            for format in [BodyFormat::HyperBench, BodyFormat::Sql] {
                let mut req = Request::new(class, "e1(a,b).");
                req.format = format;
                req.deadline_ms = Some(50);
                let lines: Vec<String> = req
                    .encode()
                    .lines()
                    .take_while(|l| *l != "%%")
                    .map(String::from)
                    .collect();
                assert_eq!(Request::decode(&lines).unwrap(), req, "{class:?}");
            }
        }
        // Hand-typed variant (nc usability) and malformed deadlines.
        let lines = vec!["SHW_LEQ 2 DEADLINE 750".to_string(), "e1(a,b).".to_string()];
        let req = Request::decode(&lines).unwrap();
        assert_eq!(req.class, RequestClass::ShwLeq(2));
        assert_eq!(req.deadline_ms, Some(750));
        assert!(Request::decode(&["SHW DEADLINE".to_string()]).is_err());
        assert!(Request::decode(&["SHW DEADLINE soon".to_string()]).is_err());
    }

    #[test]
    fn timeout_and_busy_frames_roundtrip() {
        for resp in [
            Response::Timeout,
            Response::Busy {
                retry_after_ms: 125,
            },
        ] {
            let encoded = resp.encode();
            let lines: Vec<String> = encoded
                .lines()
                .take_while(|l| *l != "%%")
                .map(String::from)
                .collect();
            assert_eq!(Response::decode(&lines).unwrap(), resp);
        }
        assert_eq!(Response::Timeout.encode(), "TIMEOUT\n%%\n");
        assert_eq!(
            Response::Busy { retry_after_ms: 40 }.encode(),
            "BUSY 40\n%%\n"
        );
        assert!(Response::decode(&["BUSY never".to_string()]).is_err());
    }

    #[test]
    fn td_frame_roundtrips_real_decompositions() {
        for h in [named::h2(), named::cycle(6), named::grid(3, 3)] {
            let (w, td) = shw::shw(&h);
            let frame = TdFrame::from_td(&td, h.num_vertices());
            let back = frame.to_td().unwrap();
            assert_eq!(back.validate(&h), Ok(()));
            assert_eq!(back.num_nodes(), td.num_nodes());
            // Bags survive node for node: reconstructed node `i` is the
            // i-th node of the frame, i.e. the i-th preorder node of the
            // original.
            let order = td.preorder();
            for (i, &u) in order.iter().enumerate() {
                assert_eq!(back.bag(i), td.bag(u));
            }
            // And through the full response encoding.
            let resp = Response::Width {
                class: "SHW".into(),
                width: w,
                td: frame.clone(),
            };
            let lines: Vec<String> = resp
                .encode()
                .lines()
                .take_while(|l| *l != "%%")
                .map(String::from)
                .collect();
            assert_eq!(Response::decode(&lines).unwrap(), resp);
        }
    }

    #[test]
    fn corrupt_td_frames_are_rejected() {
        let h = named::h2();
        let (_, td) = shw::shw(&h);
        let good = TdFrame::from_td(&td, h.num_vertices());
        let mut bad = good.clone();
        bad.nodes[0].0 = Some(0);
        assert!(bad.to_td().is_err(), "root with parent");
        let mut bad = good.clone();
        if bad.nodes.len() > 1 {
            bad.nodes[1].0 = Some(99);
            assert!(bad.to_td().is_err(), "parent out of preorder range");
        }
        let mut bad = good.clone();
        bad.nodes[0].1 = u32::MAX;
        assert!(bad.to_td().is_err(), "bag id out of range");
        let mut bad = good.clone();
        bad.universe = 3;
        assert!(bad.to_td().is_err(), "universe mismatch");
    }

    #[test]
    fn stats_frames_with_unknown_fields_stay_parseable() {
        // The STATS field set grows over time (per-stripe load,
        // result-cache and store rows). A client built against an older
        // field set — this decoder — must parse newer frames
        // generically rather than reject them.
        let lines = vec![
            "OK STATS vertices=10 edges=8 stripe_load=1,0,2 store_hits=7 \
             some_future_row=anything result_cache_misses=0,0,0 \
             reduce_edges_dropped=3 reduce_vertices_peeled=1 reduce_components=2"
                .to_string(),
        ];
        match Response::decode(&lines).expect("extended STATS parses") {
            Response::Stats { fields } => {
                assert_eq!(fields.len(), 9);
                assert!(fields
                    .iter()
                    .any(|(k, v)| k == "stripe_load" && v == "1,0,2"));
                assert!(fields
                    .iter()
                    .any(|(k, v)| k == "some_future_row" && v == "anything"));
                // The reduction-pipeline rows ride the same generic
                // key=value format: old clients see three more opaque
                // fields, nothing else changes.
                for (key, want) in [
                    ("reduce_edges_dropped", "3"),
                    ("reduce_vertices_peeled", "1"),
                    ("reduce_components", "2"),
                ] {
                    assert!(fields.iter().any(|(k, v)| k == key && v == want));
                }
            }
            other => panic!("{other:?}"),
        }
        // Decision frames tolerate extra fields the same way (they ride
        // in `fields`, ordered).
        let lines = vec!["OK BEST k=2 eval=concov new_field=1 answer=no".to_string()];
        match Response::decode(&lines).expect("extended decision parses") {
            Response::Decision { class, fields, .. } => {
                assert_eq!(class, "BEST");
                assert_eq!(fields.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comment_bodies_roundtrip_through_stuffing() {
        // A body carrying '%'-comment lines — including one that is
        // literally "%%" — must survive encode → read_frame → decode
        // intact, not truncate the frame at the fake terminator.
        let body = "% header comment\n%%\ne1(a,b),\n% mid\ne2(b,c).";
        let req = Request::new(RequestClass::Shw, body);
        let mut cursor = io::Cursor::new(req.encode().into_bytes());
        let lines = read_frame(&mut cursor).unwrap().unwrap();
        let back = Request::decode(&lines).unwrap();
        assert_eq!(back, req);
        // And nothing is left dangling on the stream.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn oversized_lines_are_capped_during_the_read() {
        // A newline-free flood larger than the cap errors out instead of
        // buffering unboundedly (the take() bound keeps memory at the
        // cap even while consuming).
        let flood = vec![b'a'; MAX_LINE_BYTES + 10];
        let mut cursor = io::Cursor::new(flood);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn slack_bits_beyond_the_universe_are_rejected() {
        let h = named::h2(); // 10 vertices: bits 10..64 of word 0 are slack
        let (_, td) = shw::shw(&h);
        let mut bad = TdFrame::from_td(&td, h.num_vertices());
        bad.snapshot.storage[0] |= 1 << 63;
        assert!(bad.to_td().is_err(), "slack bit must be rejected");
    }

    fn frame_lines(encoded: &str) -> Vec<String> {
        let mut lines: Vec<String> = encoded.lines().map(String::from).collect();
        assert_eq!(lines.pop().as_deref(), Some("%%"), "terminator present");
        lines
    }

    #[test]
    fn hello_frames_roundtrip_and_advertise_v1() {
        let req = Request::new(RequestClass::Hello, "");
        assert_eq!(req.encode(), "HELLO\n%%\n");
        let decoded = Request::decode(&frame_lines(&req.encode())).unwrap();
        assert_eq!(decoded.class, RequestClass::Hello);
        let resp = Response::hello();
        let lines = frame_lines(&resp.encode());
        assert_eq!(
            lines[0],
            format!("OK HELLO proto={PROTOCOL_VERSION} verbs={PROTOCOL_VERBS}")
        );
        match Response::decode(&lines).unwrap() {
            Response::Hello { fields } => {
                assert!(fields.iter().any(|(k, v)| k == "proto" && v == "V1"));
                let verbs = &fields.iter().find(|(k, _)| k == "verbs").unwrap().1;
                for verb in ["BATCH", "HELLO", "SHW", "STATS"] {
                    assert!(verbs.split(',').any(|v| v == verb), "{verb} advertised");
                }
            }
            other => panic!("{other:?}"),
        }
        // A future server may add fields; they must ride generically.
        let lines = vec!["OK HELLO proto=V2 verbs=SHW max_batch=64".to_string()];
        match Response::decode(&lines).unwrap() {
            Response::Hello { fields } => assert_eq!(fields.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn batch_requests_roundtrip_with_counted_bodies() {
        // Mixed classes, sql bodies, comment lines (including a literal
        // "%%" comment) and an empty body all survive the counted
        // framing through a real read_frame pass.
        let items = vec![
            Request::new(RequestClass::Shw, "% note\n%%\ne1(a,b),\ne2(b,c)."),
            Request::new(RequestClass::ShwLeq(2), "e1(a,b)."),
            {
                let mut r = Request::new(RequestClass::Hw, "SELECT MIN(r.a) FROM r");
                r.format = BodyFormat::Sql;
                r
            },
            Request::new(RequestClass::Stats, "e1(a,b)."),
            Request::new(RequestClass::Hello, ""),
        ];
        let mut batch = BatchRequest::new(items);
        batch.deadline_ms = Some(500);
        let mut cursor = io::Cursor::new(batch.encode().into_bytes());
        let lines = read_frame(&mut cursor).unwrap().unwrap();
        match WireRequest::decode(&lines).unwrap() {
            WireRequest::Batch(back) => assert_eq!(back, batch),
            other => panic!("{other:?}"),
        }
        // Single requests still decode as singles through WireRequest.
        let single = Request::new(RequestClass::Shw, "e1(a,b).");
        match WireRequest::decode(&frame_lines(&single.encode())).unwrap() {
            WireRequest::Single(back) => assert_eq!(back, single),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_batch_requests_are_rejected() {
        // Per-item deadlines are the batch header's job.
        let lines = vec![
            "BATCH 1".to_string(),
            "@ SHW DEADLINE 50 lines=1".to_string(),
            "e1(a,b).".to_string(),
        ];
        assert!(BatchRequest::decode(&lines).is_err());
        // Nested batch, short body, trailing garbage, missing count.
        let lines = vec!["BATCH 1".to_string(), "@ BATCH 2 lines=0".to_string()];
        assert!(BatchRequest::decode(&lines).is_err());
        let lines = vec!["BATCH 1".to_string(), "@ SHW lines=3".to_string()];
        assert!(BatchRequest::decode(&lines).is_err());
        let lines = vec![
            "BATCH 1".to_string(),
            "@ SHW lines=0".to_string(),
            "stray".to_string(),
        ];
        assert!(BatchRequest::decode(&lines).is_err());
        assert!(BatchRequest::decode(&["BATCH".to_string()]).is_err());
        assert!(BatchRequest::decode(&["BATCH many".to_string()]).is_err());
        // And a batch where a single was expected (and vice versa).
        assert!(Request::decode(&["BATCH 1".to_string()]).is_err());
        assert!(BatchRequest::decode(&["SHW".to_string()]).is_err());
    }

    #[test]
    fn batch_responses_roundtrip_and_strip_to_singles() {
        let h = named::h2();
        let (w, td) = shw::shw(&h);
        let singles = vec![
            Response::Width {
                class: "SHW".into(),
                width: w,
                td: TdFrame::from_td(&td, h.num_vertices()),
            },
            Response::Decision {
                class: "SHW_LEQ".into(),
                fields: vec![],
                k: 1,
                td: None,
            },
            Response::Timeout,
            Response::Busy {
                retry_after_ms: 100,
            },
            Response::error("request", "width must be >= 1"),
            Response::hello(),
        ];
        let batch = Response::Batch {
            responses: singles.clone(),
        };
        let encoded = batch.encode();
        let decoded = Response::decode(&frame_lines(&encoded)).unwrap();
        assert_eq!(decoded, batch);
        // Envelope-stripping invariant: dropping the OK BATCH header and
        // the @ separators yields the concatenated single frames minus
        // their terminators.
        let stripped: String = encoded
            .lines()
            .filter(|l| !l.starts_with("OK BATCH") && !l.starts_with("@ lines=") && *l != "%%")
            .map(|l| format!("{l}\n"))
            .collect();
        let concat: String = singles
            .iter()
            .map(|r| r.encode())
            .collect::<String>()
            .lines()
            .filter(|l| *l != "%%")
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(stripped, concat);
    }

    #[test]
    fn request_header_is_shared_by_both_paths() {
        // The same header grammar parses single and batch headers.
        let h = RequestHeader::parse("SHW_LEQ 3 DEADLINE 250 sql").unwrap();
        assert_eq!(h.verb, HeaderVerb::Class(RequestClass::ShwLeq(3)));
        assert_eq!(h.deadline_ms, Some(250));
        assert_eq!(h.format, BodyFormat::Sql);
        assert_eq!(h.encode(), "SHW_LEQ 3 DEADLINE 250 sql");
        let b = RequestHeader::parse("BATCH 7 DEADLINE 100").unwrap();
        assert_eq!(b.verb, HeaderVerb::Batch(7));
        assert_eq!(b.deadline_ms, Some(100));
        assert_eq!(b.encode(), "BATCH 7 DEADLINE 100");
        assert!(RequestHeader::parse("NOPE 1").is_err());
    }

    #[test]
    fn frame_reader_handles_eof_and_terminators() {
        let mut input = io::Cursor::new(b"SHW\ne(a,b)\n%%\n".to_vec());
        let lines = read_frame(&mut input).unwrap().unwrap();
        assert_eq!(lines, vec!["SHW".to_string(), "e(a,b)".to_string()]);
        assert!(read_frame(&mut input).unwrap().is_none(), "clean EOF");
        let mut cut = io::Cursor::new(b"SHW\ne(a,b)\n".to_vec());
        assert!(read_frame(&mut cut).is_err(), "EOF mid-frame");
    }
}
