//! Yannakakis' algorithm over a join tree.
//!
//! A [`JoinTree`] is a rooted tree whose nodes each hold one materialised
//! relation (in the decomposition pipeline: the join of a bag's cover
//! relations, projected to the bag variables). Provided the tree comes
//! from a tree decomposition, the running-intersection property holds and
//! the classic three phases apply: bottom-up semijoin reduction, top-down
//! semijoin reduction (together the *full reducer*), and a final bottom-up
//! join to produce answers — or, for the aggregate queries of the paper's
//! benchmark, a direct read-off after reduction.

use crate::relation::{Relation, VarId};
use softhw_hypergraph::FxHashMap;

/// A rooted join tree of materialised relations.
#[derive(Clone, Debug)]
pub struct JoinTree {
    /// Node relations.
    pub relations: Vec<Relation>,
    /// Children lists, parallel to `relations`.
    pub children: Vec<Vec<usize>>,
    /// Root node index.
    pub root: usize,
}

/// Logical work counters for one evaluation, used alongside wall-clock
/// time in the experiment harness (tuples materialised is the
/// machine-independent cost signal).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Total tuples produced by joins (bag materialisation + final join).
    pub tuples_materialised: u64,
    /// Number of semijoin operations performed.
    pub semijoins: u64,
    /// Total tuples scanned by semijoins.
    pub semijoin_tuples: u64,
}

impl JoinTree {
    /// Creates a single-node tree.
    pub fn leaf(rel: Relation) -> Self {
        JoinTree {
            relations: vec![rel],
            children: vec![Vec::new()],
            root: 0,
        }
    }

    /// Adds a node under `parent`; returns its index.
    pub fn add_child(&mut self, parent: usize, rel: Relation) -> usize {
        let id = self.relations.len();
        self.relations.push(rel);
        self.children.push(Vec::new());
        self.children[parent].push(id);
        id
    }

    fn postorder(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.relations.len());
        let mut stack = vec![self.root];
        while let Some(u) = stack.pop() {
            order.push(u);
            stack.extend(self.children[u].iter().copied());
        }
        order.reverse();
        order
    }

    /// The full reducer: bottom-up then top-down semijoin passes. After
    /// this, every node relation contains exactly the tuples participating
    /// in at least one global join result (global consistency).
    pub fn full_reduce(&mut self, stats: &mut EvalStats) {
        let post = self.postorder();
        // bottom-up: parent ⋉ child
        for &u in &post {
            for ci in 0..self.children[u].len() {
                let c = self.children[u][ci];
                let reduced = self.relations[u].semijoin(&self.relations[c]);
                stats.semijoins += 1;
                stats.semijoin_tuples += self.relations[u].len() as u64;
                self.relations[u] = reduced;
            }
        }
        // top-down: child ⋉ parent
        for &u in post.iter().rev() {
            for ci in 0..self.children[u].len() {
                let c = self.children[u][ci];
                let reduced = self.relations[c].semijoin(&self.relations[u]);
                stats.semijoins += 1;
                stats.semijoin_tuples += self.relations[c].len() as u64;
                self.relations[c] = reduced;
            }
        }
    }

    /// MIN of a variable over the join result. Requires a prior
    /// [`JoinTree::full_reduce`]; then any node containing the variable
    /// holds exactly its participating values.
    pub fn min_after_reduce(&self, v: VarId) -> Option<u64> {
        self.relations.iter().filter_map(|r| r.min_of(v)).min()
    }

    /// MAX analogue of [`JoinTree::min_after_reduce`].
    pub fn max_after_reduce(&self, v: VarId) -> Option<u64> {
        self.relations.iter().filter_map(|r| r.max_of(v)).max()
    }

    /// COUNT(*) of the join of all node relations, via the weighted
    /// semiring DP (no materialisation of the result).
    pub fn count_join(&self) -> u128 {
        // weight per tuple, bottom-up
        fn weights(tree: &JoinTree, u: usize) -> Vec<u128> {
            let rel = &tree.relations[u];
            let mut w = vec![1u128; rel.len()];
            for &c in &tree.children[u] {
                let cw = weights(tree, c);
                let crel = &tree.relations[c];
                let shared: Vec<VarId> = rel
                    .schema()
                    .iter()
                    .copied()
                    .filter(|v| crel.position(*v).is_some())
                    .collect();
                let cpos: Vec<usize> = shared
                    .iter()
                    .map(|&v| crel.position(v).expect("shared"))
                    .collect();
                let upos: Vec<usize> = shared
                    .iter()
                    .map(|&v| rel.position(v).expect("shared"))
                    .collect();
                let mut agg: FxHashMap<Vec<u64>, u128> = FxHashMap::default();
                for (i, r) in crel.rows().enumerate() {
                    let key: Vec<u64> = cpos.iter().map(|&p| r[p]).collect();
                    *agg.entry(key).or_insert(0) += cw[i];
                }
                for (i, r) in rel.rows().enumerate() {
                    let key: Vec<u64> = upos.iter().map(|&p| r[p]).collect();
                    w[i] = w[i].saturating_mul(*agg.get(&key).unwrap_or(&0));
                }
            }
            w
        }
        weights(self, self.root).into_iter().sum()
    }

    /// Materialises the full join of all node relations (bottom-up,
    /// projecting each intermediate to the variables still needed above or
    /// in `output`). For correctness testing and small outputs.
    pub fn join_all(&self, output: &[VarId], stats: &mut EvalStats) -> Relation {
        fn needed_above(tree: &JoinTree, u: usize, acc: &mut Vec<VarId>) {
            for &c in &tree.children[u] {
                for &v in tree.relations[c].schema() {
                    if !acc.contains(&v) {
                        acc.push(v);
                    }
                }
                needed_above(tree, c, acc);
            }
        }
        fn rec(tree: &JoinTree, u: usize, output: &[VarId], stats: &mut EvalStats) -> Relation {
            let mut acc = tree.relations[u].clone();
            for &c in &tree.children[u] {
                let sub = rec(tree, c, output, stats);
                acc = acc.natural_join(&sub);
                stats.tuples_materialised += acc.len() as u64;
            }
            // Project to output vars plus everything shared with the rest
            // of the tree (ancestors/siblings): keep vars in output or in
            // this node's own schema to stay safe and simple.
            let keep: Vec<VarId> = acc
                .schema()
                .iter()
                .copied()
                .filter(|v| output.contains(v) || tree.relations[u].position(*v).is_some())
                .collect();
            acc.project(&keep).distinct()
        }
        let mut all_needed = output.to_vec();
        needed_above(self, self.root, &mut all_needed);
        let full = rec(self, self.root, output, stats);
        full.project(output).distinct()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(schema: &[VarId], rows: &[&[u64]]) -> Relation {
        Relation::from_rows(schema.to_vec(), rows.iter().map(|r| r.to_vec()))
    }

    /// Path query R(a,b), S(b,c), T(c,d) as a chain join tree.
    fn chain() -> JoinTree {
        let mut t = JoinTree::leaf(rel(&[0, 1], &[&[1, 10], &[2, 20], &[3, 30]]));
        let s = t.add_child(0, rel(&[1, 2], &[&[10, 100], &[20, 200], &[99, 990]]));
        t.add_child(s, rel(&[2, 3], &[&[100, 7], &[200, 8], &[200, 9]]));
        t
    }

    #[test]
    fn full_reduce_shrinks_dangling() {
        let mut t = chain();
        let mut stats = EvalStats::default();
        t.full_reduce(&mut stats);
        assert_eq!(t.relations[0].len(), 2); // (3,30) dangles
        assert_eq!(t.relations[1].len(), 2); // (99,990) dangles
        assert!(stats.semijoins >= 4);
    }

    #[test]
    fn min_max_after_reduce() {
        let mut t = chain();
        t.full_reduce(&mut EvalStats::default());
        assert_eq!(t.min_after_reduce(0), Some(1));
        assert_eq!(t.max_after_reduce(3), Some(9));
        // var 3 values participating: {7, 8, 9}
        assert_eq!(t.min_after_reduce(3), Some(7));
    }

    #[test]
    fn count_matches_materialised_join() {
        let t = chain();
        let count = t.count_join();
        let mut stats = EvalStats::default();
        let full = t.join_all(&[0, 1, 2, 3], &mut stats);
        assert_eq!(count, full.len() as u128);
        assert_eq!(count, 3); // (1,10,100,7), (2,20,200,8), (2,20,200,9)
    }

    #[test]
    fn join_all_projects_output() {
        let t = chain();
        let mut stats = EvalStats::default();
        let out = t.join_all(&[0], &mut stats);
        assert_eq!(out.schema(), &[0]);
        assert_eq!(out.len(), 2); // a ∈ {1, 2}
        assert!(stats.tuples_materialised > 0);
    }

    #[test]
    fn empty_branch_empties_everything() {
        let mut t = JoinTree::leaf(rel(&[0, 1], &[&[1, 10]]));
        t.add_child(0, rel(&[1], &[]));
        let mut stats = EvalStats::default();
        t.full_reduce(&mut stats);
        assert!(t.relations[0].is_empty());
        assert_eq!(t.count_join(), 0);
    }

    #[test]
    fn star_tree_counts() {
        // R(a,b) with two children S(b), T(b): weights multiply.
        let mut t = JoinTree::leaf(rel(&[0, 1], &[&[1, 10], &[2, 20]]));
        t.add_child(0, rel(&[1], &[&[10], &[10]]));
        t.add_child(0, rel(&[1], &[&[10], &[20]]));
        // row (1,10): 2 (from S) * 1 (from T) = 2; row (2,20): 0 * 1 = 0
        assert_eq!(t.count_join(), 2);
    }
}
