//! # softhw-engine
//!
//! The in-memory relational engine substrate for the paper's experiments
//! (Section 7, Appendices C–D): relations over `u64` values with hash
//! join / semijoin / projection / aggregation, a catalog with per-table
//! statistics, Yannakakis' algorithm over join trees, a System-R style
//! estimator standing in for PostgreSQL's `EXPLAIN` costs (cost function
//! C.2.1), the actual-cardinality cost formulas (C.2.2), and the greedy
//! binary-join baseline executor standing in for "standard execution in a
//! relational DBMS".

#![warn(missing_docs)]

pub mod baseline;
pub mod database;
pub mod estimate;
pub mod relation;
pub mod truecost;
pub mod yannakakis;

pub use database::{Database, Table};
pub use relation::{Relation, VarId};
pub use yannakakis::{EvalStats, JoinTree};
