//! The "standard relational DBMS execution" baseline of Section 7: a
//! greedy cost-based binary-join planner (System-R-lite: smallest-first,
//! prefer connected, pick by estimated intermediate size) executed with
//! materialising hash joins. Estimation errors on cyclic/skewed queries
//! translate into bad join orders and large intermediates — exactly the
//! behaviour the paper's PostgreSQL baseline exhibits.

use crate::estimate::greedy_order;
use crate::relation::{Relation, VarId};
use crate::yannakakis::EvalStats;

/// Result of a baseline execution.
#[derive(Clone, Debug)]
pub struct BaselineResult {
    /// The final (projected, distinct) answer relation.
    pub answer: Relation,
    /// Logical work counters.
    pub stats: EvalStats,
    /// Join order chosen by the planner (indices into the input atoms).
    pub order: Vec<usize>,
}

/// Plans and executes the join of `atoms` with a greedy left-deep binary
/// plan, projecting the result to `output`.
///
/// `intermediate_cap` aborts runaway executions (returns `None`) — the
/// analogue of a query timeout in the paper's experiments.
pub fn run_baseline(
    atoms: &[Relation],
    output: &[VarId],
    intermediate_cap: u64,
) -> Option<BaselineResult> {
    assert!(!atoms.is_empty());
    let refs: Vec<&Relation> = atoms.iter().collect();
    let order = greedy_order(&refs);
    let mut stats = EvalStats::default();
    let mut acc = atoms[order[0]].clone();
    for &i in &order[1..] {
        acc = acc.natural_join(&atoms[i]);
        stats.tuples_materialised += acc.len() as u64;
        if stats.tuples_materialised > intermediate_cap {
            return None;
        }
    }
    let answer = acc.project(output).distinct();
    Some(BaselineResult {
        answer,
        stats,
        order,
    })
}

/// MIN aggregate via the baseline plan.
pub fn baseline_min(
    atoms: &[Relation],
    var: VarId,
    intermediate_cap: u64,
) -> Option<(Option<u64>, EvalStats)> {
    let res = run_baseline(atoms, &[var], intermediate_cap)?;
    Some((res.answer.min_of(var), res.stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(schema: &[VarId], rows: &[&[u64]]) -> Relation {
        Relation::from_rows(schema.to_vec(), rows.iter().map(|r| r.to_vec()))
    }

    #[test]
    fn baseline_computes_correct_join() {
        let r = rel(&[0, 1], &[&[1, 10], &[2, 20]]);
        let s = rel(&[1, 2], &[&[10, 5], &[20, 6]]);
        let t = rel(&[2, 3], &[&[5, 100], &[6, 200]]);
        let res = run_baseline(&[r, s, t], &[0, 3], u64::MAX).expect("fits");
        let mut rows: Vec<Vec<u64>> = res.answer.rows().map(|r| r.to_vec()).collect();
        rows.sort();
        assert_eq!(rows, vec![vec![1, 100], vec![2, 200]]);
    }

    #[test]
    fn baseline_min_matches() {
        let r = rel(&[0, 1], &[&[9, 10], &[2, 20]]);
        let s = rel(&[1], &[&[10], &[20]]);
        let (m, stats) = baseline_min(&[r, s], 0, u64::MAX).expect("fits");
        assert_eq!(m, Some(2));
        assert!(stats.tuples_materialised > 0);
    }

    #[test]
    fn cap_aborts_blowups() {
        // Cartesian-ish blowup: two skewed relations.
        let r = Relation::from_rows(vec![0, 1], (0..300u64).map(|i| vec![i, 7]));
        let s = Relation::from_rows(vec![2, 1], (0..300u64).map(|i| vec![i, 7]));
        assert!(run_baseline(&[r, s], &[0], 1_000).is_none());
    }

    #[test]
    fn empty_input_empty_output() {
        let r = rel(&[0, 1], &[]);
        let s = rel(&[1, 2], &[&[1, 2]]);
        let res = run_baseline(&[r, s], &[0], u64::MAX).unwrap();
        assert!(res.answer.is_empty());
    }
}
