//! Named base tables with per-column statistics — the catalog layer the
//! query frontend binds SQL table/column names against.

use crate::relation::Relation;
use softhw_hypergraph::{FxHashMap, FxHashSet};

/// A base table: named columns over `u64` rows, plus the statistics a
/// DBMS keeps per table (cardinality, per-column distinct counts) and
/// primary-key metadata (used by the actual-cardinality cost function's
/// `ReduceAttrs`, Appendix C.2.2).
#[derive(Clone, Debug)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Column names, in storage order.
    pub columns: Vec<String>,
    /// Row-major data.
    rows: Vec<u64>,
    /// Index of the primary-key column, if any.
    pub pk: Option<usize>,
    /// Per-column distinct counts (computed by [`Table::finalize`]).
    distinct: Vec<u64>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: &str, columns: &[&str], pk: Option<&str>) -> Self {
        let columns: Vec<String> = columns.iter().map(|c| c.to_string()).collect();
        let pk = pk.map(|p| {
            columns
                .iter()
                .position(|c| c == p)
                .unwrap_or_else(|| panic!("pk column {p} not in table {name}"))
        });
        Table {
            name: name.to_string(),
            columns,
            rows: Vec::new(),
            pk,
            distinct: Vec::new(),
        }
    }

    /// Appends a row (must match the column count).
    pub fn push_row(&mut self, row: &[u64]) {
        assert_eq!(row.len(), self.columns.len());
        self.rows.extend_from_slice(row);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        if self.columns.is_empty() {
            0
        } else {
            self.rows.len() / self.columns.len()
        }
    }

    /// True iff the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Computes per-column statistics (the analogue of `ANALYZE`).
    pub fn finalize(&mut self) {
        let n = self.columns.len();
        let mut sets: Vec<FxHashSet<u64>> = vec![FxHashSet::default(); n];
        for row in self.rows.chunks_exact(n.max(1)) {
            for (c, set) in sets.iter_mut().enumerate() {
                set.insert(row[c]);
            }
        }
        self.distinct = sets.iter().map(|s| s.len() as u64).collect();
    }

    /// Distinct count of a column (requires [`Table::finalize`]).
    pub fn distinct_count(&self, col: usize) -> u64 {
        *self.distinct.get(col).unwrap_or(&0)
    }

    /// Extracts some columns of this table as a [`Relation`] labelled with
    /// the given variable ids (one per selected column).
    pub fn as_relation(&self, cols: &[usize], vars: &[crate::relation::VarId]) -> Relation {
        assert_eq!(cols.len(), vars.len());
        let n = self.columns.len();
        let mut out = Relation::new(vars.to_vec());
        let mut buf = Vec::with_capacity(cols.len());
        for row in self.rows.chunks_exact(n.max(1)) {
            buf.clear();
            buf.extend(cols.iter().map(|&c| row[c]));
            out.push_row(&buf);
        }
        out
    }
}

/// A database: named tables.
#[derive(Default, Clone, Debug)]
pub struct Database {
    tables: FxHashMap<String, Table>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Adds (or replaces) a table; finalizes its statistics.
    pub fn add_table(&mut self, mut t: Table) {
        t.finalize();
        self.tables.insert(t.name.clone(), t);
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// All table names (unordered).
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("r", &["a", "b"], Some("a"));
        t.push_row(&[1, 10]);
        t.push_row(&[2, 10]);
        t.push_row(&[3, 20]);
        t.finalize();
        t
    }

    #[test]
    fn table_stats() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert_eq!(t.distinct_count(0), 3);
        assert_eq!(t.distinct_count(1), 2);
        assert_eq!(t.pk, Some(0));
    }

    #[test]
    fn as_relation_selects_columns() {
        let t = sample();
        let r = t.as_relation(&[1, 0], &[7, 8]);
        assert_eq!(r.schema(), &[7, 8]);
        assert_eq!(r.row(0), &[10, 1]);
    }

    #[test]
    fn database_roundtrip() {
        let mut db = Database::new();
        db.add_table(sample());
        assert!(db.table("r").is_some());
        assert!(db.table("missing").is_none());
        assert_eq!(db.table("r").unwrap().distinct_count(1), 2);
    }

    #[test]
    #[should_panic(expected = "pk column")]
    fn bad_pk_panics() {
        Table::new("r", &["a"], Some("zzz"));
    }
}
