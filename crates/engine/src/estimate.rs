//! A System-R style cardinality estimator with an abstract cost model —
//! the stand-in for PostgreSQL's `EXPLAIN` estimates used by the paper's
//! first cost function (Appendix C.2.1).
//!
//! The estimator sees accurate *per-relation* statistics (cardinality,
//! per-variable distinct counts — the analogue of `ANALYZE`d tables) but
//! combines them under the classic uniformity and independence
//! assumptions. On skewed, cyclic join graphs this produces exactly the
//! unreliable estimates the paper reports ("the cost estimates of the
//! DBMS are sometimes very unreliable, especially ... cyclic queries").

use crate::relation::{Relation, VarId};
use softhw_hypergraph::{FxHashMap, FxHashSet};

/// Estimated cardinality of the natural join of `rels` under the
/// independence assumption:
///
/// `Π |R_i|  /  Π_{shared var v} (max ndv(v))^(occurrences(v) - 1)`.
pub fn estimated_join_card(rels: &[&Relation]) -> f64 {
    if rels.is_empty() {
        return 0.0;
    }
    let mut card: f64 = rels.iter().map(|r| r.len() as f64).product();
    let mut vars: FxHashMap<VarId, (usize, f64)> = FxHashMap::default(); // occurrences, max ndv
    for r in rels {
        for &v in r.schema() {
            let ndv = r.distinct_count(v).max(1) as f64;
            let e = vars.entry(v).or_insert((0, 1.0));
            e.0 += 1;
            e.1 = e.1.max(ndv);
        }
    }
    for (occ, ndv) in vars.values() {
        if *occ >= 2 {
            card /= ndv.powi(*occ as i32 - 1);
        }
    }
    card.max(0.0)
}

/// Abstract execution cost of joining `rels` with a greedy left-deep hash
/// join plan chosen by estimated cardinalities — the analogue of the total
/// cost PostgreSQL's planner reports for the bag query (`C(q)` in
/// Eq. (5)). Single relations cost a scan.
pub fn estimated_query_cost(rels: &[&Relation]) -> f64 {
    match rels.len() {
        0 => 0.0,
        1 => rels[0].len() as f64,
        _ => {
            let order = greedy_order(rels);
            let mut cost = 0.0;
            // scans
            for r in rels {
                cost += r.len() as f64;
            }
            // pipeline of hash joins over estimated intermediates
            let mut acc: Vec<&Relation> = vec![rels[order[0]]];
            let mut acc_card = rels[order[0]].len() as f64;
            for &i in &order[1..] {
                let right = rels[i];
                acc.push(right);
                let out = estimated_join_card(&acc);
                // build + probe + output materialisation
                cost += acc_card + right.len() as f64 + out;
                acc_card = out;
            }
            cost
        }
    }
}

/// Estimated cost of the semijoin `left ⋉ right` (scan both, emit a
/// filtered left): used for the parent/child semijoin term in Eq. (6).
pub fn estimated_semijoin_cost(left: &[&Relation], right: &[&Relation]) -> f64 {
    let l = estimated_join_card(left);
    let r = estimated_join_card(right);
    // Selectivity of the semijoin under independence: bounded by 1.
    l + r + l.min(r)
}

/// The greedy left-deep join order a System-R-lite planner would pick:
/// start from the smallest relation, repeatedly append the relation
/// minimising the estimated intermediate size, preferring connected
/// extensions (avoiding Cartesian products when possible, as real
/// planners do).
pub fn greedy_order(rels: &[&Relation]) -> Vec<usize> {
    let n = rels.len();
    assert!(n > 0);
    let mut remaining: Vec<usize> = (0..n).collect();
    let start = remaining
        .iter()
        .copied()
        .min_by(|&a, &b| {
            (rels[a].len() as f64)
                .partial_cmp(&(rels[b].len() as f64))
                .expect("finite")
        })
        .expect("non-empty");
    let mut order = vec![start];
    remaining.retain(|&i| i != start);
    let mut acc_vars: FxHashSet<VarId> = rels[start].schema().iter().copied().collect();
    let mut acc: Vec<&Relation> = vec![rels[start]];
    while !remaining.is_empty() {
        let mut best: Option<(usize, bool, f64)> = None; // idx, connected, est card
        for &i in &remaining {
            let connected = rels[i].schema().iter().any(|v| acc_vars.contains(v));
            let mut trial = acc.clone();
            trial.push(rels[i]);
            let card = estimated_join_card(&trial);
            let better = match &best {
                None => true,
                Some((_, bconn, bcard)) => {
                    (connected && !bconn) || (connected == *bconn && card < *bcard)
                }
            };
            if better {
                best = Some((i, connected, card));
            }
        }
        let (i, _, _) = best.expect("remaining non-empty");
        order.push(i);
        remaining.retain(|&j| j != i);
        acc_vars.extend(rels[i].schema().iter().copied());
        acc.push(rels[i]);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(schema: &[VarId], rows: &[&[u64]]) -> Relation {
        Relation::from_rows(schema.to_vec(), rows.iter().map(|r| r.to_vec()))
    }

    #[test]
    fn single_relation_card_is_size() {
        let r = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
        assert_eq!(estimated_join_card(&[&r]), 2.0);
    }

    #[test]
    fn key_fk_join_estimates_child_size() {
        // R(a) keys 1..100 joined with S(a,b) of 1000 rows referencing
        // those keys: estimate ≈ 100*1000/1000... per independence with
        // max-ndv on `a` = 100: 100*1000/100 = 1000 = |S|. Classic.
        let r = Relation::from_rows((0..1).map(|_| 0).collect(), (0..100).map(|i| vec![i]));
        let s = Relation::from_rows(vec![0, 1], (0..1000u64).map(|i| vec![i % 100, i]));
        let est = estimated_join_card(&[&r, &s]);
        assert!((est - 1000.0).abs() < 1e-6, "est = {est}");
    }

    #[test]
    fn independence_underestimates_skew() {
        // Partial skew: half of each relation's join column is one heavy
        // value, the rest distinct. ndv is high (~501) so independence
        // divides the product by ~501, estimating ~2000 tuples — but the
        // heavy value alone contributes 500·500 = 250k. This is the
        // misestimation mode the paper observes on cyclic queries.
        let skewed = |tag: VarId| {
            Relation::from_rows(
                vec![tag, 1],
                (0..1000u64).map(|i| vec![i, if i < 500 { 0 } else { i }]),
            )
        };
        let s = skewed(0);
        let s2 = skewed(2);
        let est = estimated_join_card(&[&s, &s2]);
        let truth = s.natural_join(&s2).len() as f64;
        assert!(
            truth >= 50.0 * est,
            "skew must be underestimated: est {est}, truth {truth}"
        );
    }

    #[test]
    fn cost_grows_with_inputs() {
        let small = rel(&[0], &[&[1]]);
        let big = Relation::from_rows(vec![0], (0..100u64).map(|i| vec![i]));
        let c1 = estimated_query_cost(&[&small, &big]);
        let c2 = estimated_query_cost(&[&big, &big]);
        assert!(c2 > c1);
        assert_eq!(estimated_query_cost(&[&big]), 100.0);
    }

    #[test]
    fn greedy_order_prefers_connected() {
        let a = rel(&[0, 1], &[&[1, 2], &[2, 3]]);
        let b = rel(&[1, 2], &[&[2, 5]]);
        let c = rel(&[9], &[&[1], &[2], &[3]]);
        // starting from b (smallest), the next pick must be the connected
        // `a` rather than the Cartesian `c`.
        let order = greedy_order(&[&a, &b, &c]);
        assert_eq!(order[0], 1);
        assert_eq!(order[1], 0);
    }

    #[test]
    fn semijoin_cost_symmetricish() {
        let a = Relation::from_rows(vec![0], (0..10u64).map(|i| vec![i]));
        let b = Relation::from_rows(vec![0], (0..50u64).map(|i| vec![i]));
        let c = estimated_semijoin_cost(&[&a], &[&b]);
        assert!(c >= 60.0);
    }
}
