//! The actual-cardinality cost function of Appendix C.2.2 — an
//! "omniscient" cost model that knows the true size `|J_u|` of every bag
//! join and prices the Yannakakis phases from it:
//!
//! - Eq. (7): `cost(u) = |J_u| + Σ_i |R_i|·log|R_i|` for covers with more
//!   than one relation, `0` for single-relation bags;
//! - Eq. (8): `ReducedSz(u) = |J_u| / (1 + |ReduceAttrs(u)|)`, `0` as soon
//!   as any child reduces to `0`;
//! - `ScanCost(u) = |J_u|·log|J_u|`, `0` when some child is empty after
//!   reduction (PostgreSQL never scans the left side of a semijoin with an
//!   empty right side);
//! - Eq. (9): `cost(T_p) = cost(p) + ScanCost(p)
//!   + Σ_i (cost(T_{c_i}) + ReducedSz(c_i)·log ReducedSz(c_i))`.
//!
//! `ReduceAttrs(p)` — the bag attributes along which the up-phase
//! semijoins can actually shrink `J_p` — is computed by the query layer
//! (it needs primary-key metadata) and passed in as a count.

/// `x·log(x)` with the conventional guard `x <= 1 → 0` (sorting/scanning
/// nothing costs nothing).
pub fn xlogx(x: f64) -> f64 {
    if x <= 1.0 {
        0.0
    } else {
        x * x.ln()
    }
}

/// Eq. (7): the cost of materialising bag `u` from its cover relations.
pub fn node_cost(j_u: f64, cover_sizes: &[f64]) -> f64 {
    if cover_sizes.len() <= 1 {
        0.0
    } else {
        j_u + cover_sizes.iter().map(|&s| xlogx(s)).sum::<f64>()
    }
}

/// Eq. (8): the size of bag `u` after the up-phase semijoins reach it.
pub fn reduced_size(j_u: f64, reduce_attrs: usize, children_reduced: &[f64]) -> f64 {
    if children_reduced.contains(&0.0) {
        0.0
    } else {
        j_u / (1.0 + reduce_attrs as f64)
    }
}

/// `ScanCost(u)`: scanning/sorting the bag for its semijoins with the
/// children — skipped when a child is already empty.
pub fn scan_cost(j_u: f64, children_reduced: &[f64]) -> f64 {
    if children_reduced.contains(&0.0) {
        0.0
    } else {
        xlogx(j_u)
    }
}

/// Eq. (9): total cost of the subtree rooted at `p`.
///
/// `children` carries `(cost(T_c), ReducedSz(c))` per child.
pub fn subtree_cost(node_cost: f64, scan_cost: f64, children: &[(f64, f64)]) -> f64 {
    node_cost + scan_cost + children.iter().map(|&(c, r)| c + xlogx(r)).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xlogx_guards_small_inputs() {
        assert_eq!(xlogx(0.0), 0.0);
        assert_eq!(xlogx(1.0), 0.0);
        assert!(xlogx(10.0) > 0.0);
    }

    #[test]
    fn single_relation_bags_are_free() {
        assert_eq!(node_cost(1000.0, &[1000.0]), 0.0);
        assert!(node_cost(1000.0, &[10.0, 10.0]) >= 1000.0);
    }

    #[test]
    fn reduction_divides_by_attr_count() {
        assert_eq!(reduced_size(100.0, 0, &[5.0]), 100.0);
        assert_eq!(reduced_size(100.0, 1, &[5.0]), 50.0);
        assert_eq!(reduced_size(100.0, 3, &[5.0]), 25.0);
        assert_eq!(reduced_size(100.0, 1, &[0.0]), 0.0);
    }

    #[test]
    fn empty_children_suppress_scans() {
        assert_eq!(scan_cost(100.0, &[0.0, 5.0]), 0.0);
        assert!(scan_cost(100.0, &[5.0]) > 0.0);
    }

    #[test]
    fn subtree_cost_accumulates() {
        let leaf = subtree_cost(0.0, 0.0, &[]);
        assert_eq!(leaf, 0.0);
        let parent = subtree_cost(10.0, 5.0, &[(leaf, 4.0), (3.0, 0.0)]);
        assert!(parent >= 18.0);
        // a zero-reduced child contributes no xlogx term
        assert!((parent - (15.0 + xlogx(4.0) + 3.0)).abs() < 1e-9);
    }
}
