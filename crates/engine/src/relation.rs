//! In-memory relations over `u64` values with variable-labelled schemas.
//!
//! A [`Relation`] is a bag of rows; its schema is a list of *variable
//! ids*. Variables are the equivalence classes of columns under the
//! query's equality predicates (assigned by the query frontend), so two
//! relations sharing a variable join naturally on it. All operators are
//! hash-based and materialising, which is exactly what makes decomposition
//! quality visible: a Cartesian bag cover or a bad join order materialises
//! its blow-up.

use softhw_hypergraph::FxHashMap;
use std::fmt;

/// Variable identifier (column equivalence class within one query).
pub type VarId = u32;

/// A materialised relation: row-major `u64` tuples under a variable
/// schema. Schemas list each variable at most once.
#[derive(Clone, PartialEq, Eq)]
pub struct Relation {
    schema: Vec<VarId>,
    tuples: Vec<u64>,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn new(schema: Vec<VarId>) -> Self {
        debug_assert!(
            {
                let mut s = schema.clone();
                s.sort_unstable();
                s.windows(2).all(|w| w[0] != w[1])
            },
            "schema variables must be distinct"
        );
        Relation {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Creates a relation from rows (each of schema arity).
    pub fn from_rows(schema: Vec<VarId>, rows: impl IntoIterator<Item = Vec<u64>>) -> Self {
        let mut r = Relation::new(schema);
        for row in rows {
            r.push_row(&row);
        }
        r
    }

    /// The schema (variable per column).
    #[inline]
    pub fn schema(&self) -> &[VarId] {
        &self.schema
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.schema.len()
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        if self.schema.is_empty() {
            // 0-ary relation: distinguish the empty relation from the
            // single empty tuple via the tuples sentinel length.
            self.tuples.len()
        } else {
            self.tuples.len() / self.schema.len()
        }
    }

    /// True iff the relation has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: &[u64]) {
        debug_assert_eq!(row.len(), self.arity());
        if self.schema.is_empty() {
            self.tuples.push(1); // sentinel: count of empty tuples
        } else {
            self.tuples.extend_from_slice(row);
        }
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        let a = self.arity();
        &self.tuples[i * a..(i + 1) * a]
    }

    /// Iterates rows.
    pub fn rows(&self) -> impl Iterator<Item = &[u64]> + '_ {
        let a = self.arity().max(1);
        self.tuples.chunks_exact(a).take(self.len())
    }

    /// Position of variable `v` in the schema.
    #[inline]
    pub fn position(&self, v: VarId) -> Option<usize> {
        self.schema.iter().position(|&x| x == v)
    }

    /// Number of distinct values of variable `v` (exact; used as the
    /// per-relation statistic the estimator builds on).
    pub fn distinct_count(&self, v: VarId) -> usize {
        let Some(pos) = self.position(v) else {
            return 0;
        };
        let mut set: softhw_hypergraph::FxHashSet<u64> = softhw_hypergraph::FxHashSet::default();
        for r in self.rows() {
            set.insert(r[pos]);
        }
        set.len()
    }

    /// True iff variable `v` is a key of this relation (all values
    /// distinct).
    pub fn is_key(&self, v: VarId) -> bool {
        self.position(v).is_some() && self.distinct_count(v) == self.len()
    }

    /// Projection onto `vars` (must be a sub-schema), keeping duplicates.
    pub fn project(&self, vars: &[VarId]) -> Relation {
        let idx: Vec<usize> = vars
            .iter()
            .map(|&v| self.position(v).expect("projection var in schema"))
            .collect();
        let mut out = Relation::new(vars.to_vec());
        let mut row = Vec::with_capacity(vars.len());
        for r in self.rows() {
            row.clear();
            row.extend(idx.iter().map(|&i| r[i]));
            out.push_row(&row);
        }
        out
    }

    /// Removes duplicate rows.
    pub fn distinct(&self) -> Relation {
        let mut seen: softhw_hypergraph::FxHashSet<Vec<u64>> =
            softhw_hypergraph::FxHashSet::default();
        let mut out = Relation::new(self.schema.clone());
        for r in self.rows() {
            if seen.insert(r.to_vec()) {
                out.push_row(r);
            }
        }
        out
    }

    /// Selection `v = value`.
    pub fn select_eq(&self, v: VarId, value: u64) -> Relation {
        let pos = self.position(v).expect("selection var in schema");
        let mut out = Relation::new(self.schema.clone());
        for r in self.rows() {
            if r[pos] == value {
                out.push_row(r);
            }
        }
        out
    }

    /// Natural join on shared variables. With no shared variables this is
    /// the Cartesian product (deliberately: width-k bags without connected
    /// covers pay exactly this).
    pub fn natural_join(&self, other: &Relation) -> Relation {
        let shared: Vec<VarId> = self
            .schema
            .iter()
            .copied()
            .filter(|v| other.position(*v).is_some())
            .collect();
        let self_pos: Vec<usize> = shared
            .iter()
            .map(|&v| self.position(v).expect("shared"))
            .collect();
        let other_pos: Vec<usize> = shared
            .iter()
            .map(|&v| other.position(v).expect("shared"))
            .collect();
        let extra: Vec<VarId> = other
            .schema
            .iter()
            .copied()
            .filter(|v| self.position(*v).is_none())
            .collect();
        let extra_pos: Vec<usize> = extra
            .iter()
            .map(|&v| other.position(v).expect("extra"))
            .collect();
        let mut out_schema = self.schema.clone();
        out_schema.extend_from_slice(&extra);
        let mut out = Relation::new(out_schema);
        // Build on the smaller side for cache friendliness; for clarity we
        // always build on `other`.
        let mut index: FxHashMap<Vec<u64>, Vec<usize>> = FxHashMap::default();
        for (i, r) in other.rows().enumerate() {
            let key: Vec<u64> = other_pos.iter().map(|&p| r[p]).collect();
            index.entry(key).or_default().push(i);
        }
        let mut row: Vec<u64> = Vec::with_capacity(out.arity());
        let mut key: Vec<u64> = Vec::with_capacity(shared.len());
        for r in self.rows() {
            key.clear();
            key.extend(self_pos.iter().map(|&p| r[p]));
            if let Some(matches) = index.get(&key) {
                for &j in matches {
                    let o = other.row(j);
                    row.clear();
                    row.extend_from_slice(r);
                    row.extend(extra_pos.iter().map(|&p| o[p]));
                    out.push_row(&row);
                }
            }
        }
        out
    }

    /// Semijoin `self ⋉ other`: rows of `self` with a match in `other` on
    /// shared variables. With no shared variables, returns `self` if
    /// `other` is non-empty and the empty relation otherwise.
    pub fn semijoin(&self, other: &Relation) -> Relation {
        let shared: Vec<VarId> = self
            .schema
            .iter()
            .copied()
            .filter(|v| other.position(*v).is_some())
            .collect();
        if shared.is_empty() {
            return if other.is_empty() {
                Relation::new(self.schema.clone())
            } else {
                self.clone()
            };
        }
        let self_pos: Vec<usize> = shared.iter().map(|&v| self.position(v).unwrap()).collect();
        let other_pos: Vec<usize> = shared.iter().map(|&v| other.position(v).unwrap()).collect();
        let mut keys: softhw_hypergraph::FxHashSet<Vec<u64>> =
            softhw_hypergraph::FxHashSet::default();
        for r in other.rows() {
            keys.insert(other_pos.iter().map(|&p| r[p]).collect());
        }
        let mut out = Relation::new(self.schema.clone());
        let mut key: Vec<u64> = Vec::with_capacity(shared.len());
        for r in self.rows() {
            key.clear();
            key.extend(self_pos.iter().map(|&p| r[p]));
            if keys.contains(&key) {
                out.push_row(r);
            }
        }
        out
    }

    /// Minimum value of variable `v` over all rows.
    pub fn min_of(&self, v: VarId) -> Option<u64> {
        let pos = self.position(v)?;
        self.rows().map(|r| r[pos]).min()
    }

    /// Maximum value of variable `v` over all rows.
    pub fn max_of(&self, v: VarId) -> Option<u64> {
        let pos = self.position(v)?;
        self.rows().map(|r| r[pos]).max()
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation(vars {:?}, {} rows)", self.schema, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(schema: &[VarId], rows: &[&[u64]]) -> Relation {
        Relation::from_rows(schema.to_vec(), rows.iter().map(|r| r.to_vec()))
    }

    #[test]
    fn push_and_iterate() {
        let r = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(1), &[3, 4]);
        assert_eq!(r.rows().count(), 2);
    }

    #[test]
    fn join_on_shared_var() {
        let r = rel(&[0, 1], &[&[1, 10], &[2, 20]]);
        let s = rel(&[1, 2], &[&[10, 100], &[10, 101], &[30, 300]]);
        let j = r.natural_join(&s);
        assert_eq!(j.schema(), &[0, 1, 2]);
        let mut rows: Vec<Vec<u64>> = j.rows().map(|r| r.to_vec()).collect();
        rows.sort();
        assert_eq!(rows, vec![vec![1, 10, 100], vec![1, 10, 101]]);
    }

    #[test]
    fn join_without_shared_is_cartesian() {
        let r = rel(&[0], &[&[1], &[2]]);
        let s = rel(&[1], &[&[7], &[8], &[9]]);
        let j = r.natural_join(&s);
        assert_eq!(j.len(), 6);
    }

    #[test]
    fn semijoin_filters() {
        let r = rel(&[0, 1], &[&[1, 10], &[2, 20], &[3, 10]]);
        let s = rel(&[1], &[&[10]]);
        let sj = r.semijoin(&s);
        assert_eq!(sj.len(), 2);
        // disjoint schemas
        let t = rel(&[9], &[&[5]]);
        assert_eq!(r.semijoin(&t).len(), 3);
        let empty = Relation::new(vec![9]);
        assert_eq!(r.semijoin(&empty).len(), 0);
    }

    #[test]
    fn project_and_distinct() {
        let r = rel(&[0, 1], &[&[1, 10], &[1, 20], &[2, 10]]);
        let p = r.project(&[0]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.distinct().len(), 2);
    }

    #[test]
    fn select_and_aggregates() {
        let r = rel(&[0, 1], &[&[1, 10], &[2, 20], &[3, 5]]);
        assert_eq!(r.select_eq(0, 2).len(), 1);
        assert_eq!(r.min_of(1), Some(5));
        assert_eq!(r.max_of(1), Some(20));
        assert_eq!(r.min_of(9), None);
    }

    #[test]
    fn stats() {
        let r = rel(&[0, 1], &[&[1, 10], &[1, 20], &[2, 10]]);
        assert_eq!(r.distinct_count(0), 2);
        assert_eq!(r.distinct_count(1), 2);
        assert!(!r.is_key(0));
        let k = rel(&[0], &[&[1], &[2], &[3]]);
        assert!(k.is_key(0));
    }

    #[test]
    fn zero_ary_relations() {
        let mut t = Relation::new(vec![]);
        assert!(t.is_empty());
        t.push_row(&[]);
        assert_eq!(t.len(), 1);
    }
}
