//! A Hetionet-like workload: the five edge-type relations the benchmark
//! queries touch (`hetio45159`, `hetio45160`, `hetio45173`, `hetio45176`,
//! `hetio45177`), each a binary `(s, d)` relation drawn from a power-law
//! random digraph over a shared node universe. The queries are self-join
//! graph patterns (cycles and triangles), so heavy-tailed degrees
//! reproduce the large decomposition-quality spread of Figures 6/13–16.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use softhw_engine::{Database, Table};

/// Scale knobs for [`generate`].
#[derive(Clone, Debug)]
pub struct HetionetScale {
    /// Size of the node universe.
    pub nodes: u64,
    /// Edges per relation.
    pub edges_per_relation: u64,
}

impl Default for HetionetScale {
    fn default() -> Self {
        HetionetScale {
            nodes: 1_200,
            edges_per_relation: 5_000,
        }
    }
}

/// The edge-type relation names used by the queries.
pub const RELATIONS: [&str; 5] = [
    "hetio45159",
    "hetio45160",
    "hetio45173",
    "hetio45176",
    "hetio45177",
];

/// Schema-only catalog.
pub fn schema() -> Database {
    let mut db = Database::new();
    for name in RELATIONS {
        db.add_table(Table::new(name, &["s", "d"], None));
    }
    db
}

/// Power-law-ish endpoint draw: node `i` is picked with probability
/// roughly `∝ 1/(i+1)` over the universe.
fn powerlaw<R: Rng>(rng: &mut R, n: u64) -> u64 {
    let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-12);
    (((n as f64).powf(u) - 1.0) as u64).min(n - 1)
}

/// Generates the populated workload. Each relation gets its own degree
/// skew direction so different join orders behave very differently.
pub fn generate(scale: &HetionetScale, seed: u64) -> Database {
    let mut db = Database::new();
    for (i, name) in RELATIONS.iter().enumerate() {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(i as u64 * 7919));
        let mut t = Table::new(name, &["s", "d"], None);
        let mut seen: softhw_hypergraph::FxHashSet<(u64, u64)> =
            softhw_hypergraph::FxHashSet::default();
        while (seen.len() as u64) < scale.edges_per_relation {
            // alternate skew: sources heavy for even relations, targets
            // heavy for odd ones
            let (s, d) = if i % 2 == 0 {
                (
                    powerlaw(&mut rng, scale.nodes),
                    rng.gen_range(0..scale.nodes),
                )
            } else {
                (
                    rng.gen_range(0..scale.nodes),
                    powerlaw(&mut rng, scale.nodes),
                )
            };
            if s != d && seen.insert((s, d)) {
                t.push_row(&[s, d]);
            }
        }
        db.add_table(t);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::{Q_HTO, Q_HTO2, Q_HTO3, Q_HTO4};
    use softhw_query::{bind, parse_sql};

    #[test]
    fn queries_bind_and_match_table1_shapes() {
        let db = schema();
        for (sql, edges, vars) in [
            (Q_HTO, 7, 7),  // |H| = 7 per Table 1
            (Q_HTO2, 7, 7), // |H| = 7
            (Q_HTO3, 4, 4), // |H| = 4
            (Q_HTO4, 6, 6), // |H| = 6
        ] {
            let q = parse_sql(sql).unwrap();
            let cq = bind(&q, &db).unwrap();
            let h = cq.hypergraph();
            assert_eq!(h.num_edges(), edges);
            // each variable participates; vars is an upper sanity bound
            assert!(h.num_vertices() <= vars + 1);
            assert!(h.is_connected());
        }
    }

    #[test]
    fn generation_deterministic_and_distinct() {
        let s = HetionetScale {
            nodes: 100,
            edges_per_relation: 300,
        };
        let a = generate(&s, 5);
        let b = generate(&s, 5);
        for name in RELATIONS {
            assert_eq!(a.table(name).unwrap().len(), 300);
            assert_eq!(
                a.table(name).unwrap().distinct_count(0),
                b.table(name).unwrap().distinct_count(0)
            );
        }
    }

    #[test]
    fn degrees_are_skewed() {
        let db = generate(&HetionetScale::default(), 11);
        let t = db.table("hetio45173").unwrap();
        // source side is heavy-tailed: far fewer distinct sources than rows
        assert!(t.distinct_count(0) < t.len() as u64);
    }

    #[test]
    fn q_hto3_executes_small() {
        let db = generate(
            &HetionetScale {
                nodes: 60,
                edges_per_relation: 200,
            },
            2,
        );
        let q = parse_sql(Q_HTO3).unwrap();
        let cq = bind(&q, &db).unwrap();
        let h = cq.hypergraph();
        let (_, td) = softhw_core::shw::shw(&h);
        let plan = softhw_query::build_plan(&cq, &h, &td).unwrap();
        let atoms = softhw_query::atom_relations(&cq, &db);
        let res = softhw_query::execute(&cq, &atoms, &plan);
        let base = softhw_engine::baseline::run_baseline(&atoms, &[cq.agg_var], u64::MAX)
            .unwrap()
            .answer;
        assert_eq!(res.value, base.min_of(cq.agg_var));
    }
}
