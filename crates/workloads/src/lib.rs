//! # softhw-workloads
//!
//! Synthetic stand-ins for the paper's three benchmark datasets
//! (Section 7, Appendix D) plus the six benchmark queries verbatim. Each
//! workload module exposes `schema()` (a row-less catalog sufficient for
//! binding and the combinatorial Table 1 experiments) and
//! `generate(scale, seed)` (deterministic skewed data sized for
//! laptop-scale runs). See DESIGN.md for the substitution rationale.

#![warn(missing_docs)]

pub mod hetionet;
pub mod lsqb;
pub mod queries;
pub mod tpcds;

use softhw_engine::Database;

/// Returns the schema catalog a query name binds against.
pub fn schema_for(query_name: &str) -> Database {
    match query_name {
        "q_ds" => tpcds::schema(),
        "q_lb" => lsqb::schema(),
        _ => hetionet::schema(),
    }
}

/// Returns a populated database for a query name at default scales.
pub fn database_for(query_name: &str, seed: u64) -> Database {
    match query_name {
        "q_ds" => tpcds::generate(&tpcds::TpcdsScale::default(), seed),
        "q_lb" => lsqb::generate(&lsqb::LsqbScale::default(), seed),
        _ => hetionet::generate(&hetionet::HetionetScale::default(), seed),
    }
}
