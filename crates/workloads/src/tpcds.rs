//! A TPC-DS-like workload: the five tables touched by `q_ds`
//! (`web_sales`, `customer`, `customer_address`, `catalog_sales`,
//! `warehouse`) with the columns the query references, realistic PK/FK
//! structure, and a *skewed* non-key attribute pair
//! (`w_warehouse_sq_ft` = `ws_quantity`) closing the cycle — the part of
//! the query where independence-assumption estimates break down.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use softhw_engine::{Database, Table};

/// Scale knobs for [`generate`].
#[derive(Clone, Debug)]
pub struct TpcdsScale {
    /// Number of customers (addresses scale with it).
    pub customers: u64,
    /// Number of web_sales rows.
    pub web_sales: u64,
    /// Number of catalog_sales rows.
    pub catalog_sales: u64,
    /// Number of warehouses.
    pub warehouses: u64,
}

impl Default for TpcdsScale {
    fn default() -> Self {
        TpcdsScale {
            customers: 4_000,
            web_sales: 20_000,
            catalog_sales: 20_000,
            warehouses: 60,
        }
    }
}

/// A schema-only catalog (no rows) — sufficient for parsing/binding and
/// the pure-combinatorics experiments (Table 1 counts).
pub fn schema() -> Database {
    let mut db = Database::new();
    db.add_table(Table::new(
        "web_sales",
        &["ws_bill_customer_sk", "ws_quantity"],
        None,
    ));
    db.add_table(Table::new(
        "customer",
        &["c_customer_sk", "c_current_addr_sk"],
        Some("c_customer_sk"),
    ));
    db.add_table(Table::new(
        "customer_address",
        &["ca_address_sk"],
        Some("ca_address_sk"),
    ));
    db.add_table(Table::new(
        "catalog_sales",
        &["cs_bill_addr_sk", "cs_warehouse_sk"],
        None,
    ));
    db.add_table(Table::new(
        "warehouse",
        &["w_warehouse_sk", "w_warehouse_sq_ft"],
        Some("w_warehouse_sk"),
    ));
    db
}

/// Zipf-ish skewed draw over `0..n` (heavier on small values).
fn zipfish<R: Rng>(rng: &mut R, n: u64) -> u64 {
    // inverse-power transform of a squared uniform draw: a heavy head
    // (many collisions on small values) with a long tail keeping the
    // distinct count high — the regime where independence-assumption
    // estimates underestimate join sizes the most.
    let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-12);
    let v = (n as f64).powf(u * u) - 1.0;
    (v as u64).min(n - 1)
}

/// Generates the populated workload.
pub fn generate(scale: &TpcdsScale, seed: u64) -> Database {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut db = Database::new();

    let mut customer = Table::new(
        "customer",
        &["c_customer_sk", "c_current_addr_sk"],
        Some("c_customer_sk"),
    );
    let num_addr = (scale.customers / 2).max(1);
    for c in 0..scale.customers {
        customer.push_row(&[c, rng.gen_range(0..num_addr)]);
    }
    db.add_table(customer);

    let mut address = Table::new(
        "customer_address",
        &["ca_address_sk"],
        Some("ca_address_sk"),
    );
    for a in 0..num_addr {
        address.push_row(&[a]);
    }
    db.add_table(address);

    let mut warehouse = Table::new(
        "warehouse",
        &["w_warehouse_sk", "w_warehouse_sq_ft"],
        Some("w_warehouse_sk"),
    );
    // Square footage is skewed and collides with ws_quantity (both small
    // integers) — the non-key cyclic predicate of q_ds.
    for w in 0..scale.warehouses {
        warehouse.push_row(&[w, zipfish(&mut rng, 50)]);
    }
    db.add_table(warehouse);

    let mut web_sales = Table::new("web_sales", &["ws_bill_customer_sk", "ws_quantity"], None);
    for _ in 0..scale.web_sales {
        web_sales.push_row(&[zipfish(&mut rng, scale.customers), zipfish(&mut rng, 50)]);
    }
    db.add_table(web_sales);

    let mut catalog_sales = Table::new(
        "catalog_sales",
        &["cs_bill_addr_sk", "cs_warehouse_sk"],
        None,
    );
    for _ in 0..scale.catalog_sales {
        catalog_sales.push_row(&[
            zipfish(&mut rng, num_addr),
            rng.gen_range(0..scale.warehouses),
        ]);
    }
    db.add_table(catalog_sales);

    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::Q_DS;
    use softhw_query::{bind, parse_sql};

    #[test]
    fn q_ds_binds_against_schema() {
        let db = schema();
        let q = parse_sql(Q_DS).unwrap();
        let cq = bind(&q, &db).unwrap();
        assert_eq!(cq.atoms.len(), 5);
        let h = cq.hypergraph();
        assert_eq!(h.num_edges(), 5); // Table 1: |H| = 5
        assert_eq!(h.num_vertices(), 4);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&TpcdsScale::default(), 1);
        let b = generate(&TpcdsScale::default(), 1);
        assert_eq!(
            a.table("web_sales").unwrap().len(),
            b.table("web_sales").unwrap().len()
        );
        assert_eq!(
            a.table("warehouse").unwrap().distinct_count(1),
            b.table("warehouse").unwrap().distinct_count(1)
        );
    }

    #[test]
    fn skew_present_on_cycle_attribute() {
        let db = generate(&TpcdsScale::default(), 7);
        let ws = db.table("web_sales").unwrap();
        // quantity has far fewer distinct values than rows
        assert!(ws.distinct_count(1) < ws.len() as u64 / 10);
    }

    #[test]
    fn q_ds_executes_on_generated_data() {
        let db = generate(
            &TpcdsScale {
                customers: 200,
                web_sales: 500,
                catalog_sales: 500,
                warehouses: 10,
            },
            3,
        );
        let q = parse_sql(Q_DS).unwrap();
        let cq = bind(&q, &db).unwrap();
        let h = cq.hypergraph();
        let (_, td) = softhw_core::shw::shw(&h);
        let plan = softhw_query::build_plan(&cq, &h, &td).unwrap();
        let atoms = softhw_query::atom_relations(&cq, &db);
        let res = softhw_query::execute(&cq, &atoms, &plan);
        // cross-check against the baseline executor
        let base = softhw_engine::baseline::run_baseline(&atoms, &[cq.agg_var], u64::MAX)
            .unwrap()
            .answer;
        assert_eq!(res.value, base.min_of(cq.agg_var));
    }
}
