//! An LSQB-like workload (Labelled Subgraph Query Benchmark): the three
//! tables `q_lb` touches — `City(CityId, isPartOf_CountryId)`,
//! `Person(PersonId, isLocatedIn_CityId)`,
//! `Person_knows_Person(Person1Id, Person2Id)` — with zipfian city and
//! country sizes so the City triangle of `q_lb` produces widely varying
//! intermediates.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use softhw_engine::{Database, Table};

/// Scale knobs for [`generate`].
#[derive(Clone, Debug)]
pub struct LsqbScale {
    /// Number of cities.
    pub cities: u64,
    /// Number of countries.
    pub countries: u64,
    /// Number of persons.
    pub persons: u64,
    /// Number of knows edges.
    pub knows: u64,
}

impl Default for LsqbScale {
    fn default() -> Self {
        LsqbScale {
            cities: 400,
            countries: 20,
            persons: 5_000,
            knows: 20_000,
        }
    }
}

/// Schema-only catalog.
pub fn schema() -> Database {
    let mut db = Database::new();
    db.add_table(Table::new(
        "City",
        &["CityId", "isPartOf_CountryId"],
        Some("CityId"),
    ));
    db.add_table(Table::new(
        "Person",
        &["PersonId", "isLocatedIn_CityId"],
        Some("PersonId"),
    ));
    db.add_table(Table::new(
        "Person_knows_Person",
        &["Person1Id", "Person2Id"],
        None,
    ));
    db
}

fn zipfish<R: Rng>(rng: &mut R, n: u64) -> u64 {
    let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-12);
    (((n as f64).powf(u) - 1.0) as u64).min(n - 1)
}

/// Generates the populated workload.
pub fn generate(scale: &LsqbScale, seed: u64) -> Database {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut db = Database::new();

    let mut city = Table::new("City", &["CityId", "isPartOf_CountryId"], Some("CityId"));
    for c in 0..scale.cities {
        city.push_row(&[c, zipfish(&mut rng, scale.countries)]);
    }
    db.add_table(city);

    let mut person = Table::new(
        "Person",
        &["PersonId", "isLocatedIn_CityId"],
        Some("PersonId"),
    );
    for p in 0..scale.persons {
        person.push_row(&[p, zipfish(&mut rng, scale.cities)]);
    }
    db.add_table(person);

    let mut knows = Table::new("Person_knows_Person", &["Person1Id", "Person2Id"], None);
    for _ in 0..scale.knows {
        let a = zipfish(&mut rng, scale.persons);
        let b = rng.gen_range(0..scale.persons);
        if a != b {
            knows.push_row(&[a, b]);
        }
    }
    db.add_table(knows);

    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::Q_LB;
    use softhw_query::{bind, parse_sql};

    #[test]
    fn q_lb_binds_with_six_atoms() {
        let db = schema();
        let q = parse_sql(Q_LB).unwrap();
        let cq = bind(&q, &db).unwrap();
        assert_eq!(cq.atoms.len(), 6); // Table 1: |H| = 6
        let h = cq.hypergraph();
        assert_eq!(h.num_edges(), 6);
        assert!(h.is_connected());
    }

    #[test]
    fn q_lb_executes_small() {
        let db = generate(
            &LsqbScale {
                cities: 30,
                countries: 5,
                persons: 150,
                knows: 400,
            },
            9,
        );
        let q = parse_sql(Q_LB).unwrap();
        let cq = bind(&q, &db).unwrap();
        let h = cq.hypergraph();
        let (w, td) = softhw_core::shw::shw(&h);
        assert!(w <= 3);
        let plan = softhw_query::build_plan(&cq, &h, &td).unwrap();
        let atoms = softhw_query::atom_relations(&cq, &db);
        let res = softhw_query::execute(&cq, &atoms, &plan);
        let base = softhw_engine::baseline::run_baseline(&atoms, &[cq.agg_var], u64::MAX)
            .unwrap()
            .answer;
        assert_eq!(res.value, base.min_of(cq.agg_var));
    }

    #[test]
    fn zipf_city_sizes() {
        let db = generate(&LsqbScale::default(), 4);
        let p = db.table("Person").unwrap();
        assert!(p.distinct_count(1) <= 400);
        assert!(p.len() == 5_000);
    }
}
