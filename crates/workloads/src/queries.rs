//! The six benchmark queries of Appendix D.2, verbatim (modulo
//! whitespace): `q_ds` (TPC-DS), `q_hto` … `q_hto4` (Hetionet), and
//! `q_lb` (LSQB).

/// Query `q_ds` on TPC-DS (Listing 1).
pub const Q_DS: &str = "SELECT MIN(ws_bill_customer_sk) \
FROM web_sales, customer, customer_address, catalog_sales, warehouse \
WHERE ws_bill_customer_sk = c_customer_sk \
AND ca_address_sk = c_current_addr_sk \
AND c_current_addr_sk = cs_bill_addr_sk \
AND cs_warehouse_sk = w_warehouse_sk \
AND w_warehouse_sq_ft = ws_quantity";

/// Query `q_hto` on Hetionet (Listing 2).
pub const Q_HTO: &str = "SELECT MIN(hetio45173_0.s) \
FROM hetio45173 AS hetio45173_0, hetio45173 AS hetio45173_1, \
hetio45160 AS hetio45160_2, hetio45160 AS hetio45160_3, \
hetio45160 AS hetio45160_4, hetio45159 AS hetio45159_5, \
hetio45159 AS hetio45159_6 \
WHERE hetio45173_0.s = hetio45173_1.s AND hetio45173_0.d = hetio45160_2.s AND \
hetio45173_1.d = hetio45160_3.s AND hetio45160_2.d = hetio45160_3.d AND \
hetio45160_3.d = hetio45160_4.s AND hetio45160_4.s = hetio45159_5.s AND \
hetio45160_4.d = hetio45159_6.s AND hetio45159_5.d = hetio45159_6.d";

/// Query `q_hto2` on Hetionet (Listing 3).
pub const Q_HTO2: &str = "SELECT MAX(hetio45160.d) \
FROM hetio45173 AS hetio45173_0, hetio45173 AS hetio45173_1, hetio45173 AS \
hetio45173_2, hetio45173 AS hetio45173_3, hetio45160, hetio45176 AS \
hetio45176_5, hetio45176 AS hetio45176_6 \
WHERE hetio45173_0.s = hetio45173_1.s AND hetio45173_0.d = hetio45173_2.s AND \
hetio45173_1.d = hetio45173_3.s AND hetio45173_2.d = hetio45173_3.d AND \
hetio45173_3.d = hetio45160.s AND hetio45160.s = hetio45176_5.s AND \
hetio45160.d = hetio45176_6.s AND hetio45176_5.d = hetio45176_6.d";

/// Query `q_hto3` on Hetionet (Listing 4).
pub const Q_HTO3: &str = "SELECT MIN(hetio45173_2.d) \
FROM hetio45173 AS hetio45173_0, hetio45173 AS hetio45173_1, hetio45173 AS \
hetio45173_2, hetio45173 AS hetio45173_3 \
WHERE hetio45173_0.s = hetio45173_1.s AND hetio45173_0.d = hetio45173_2.s \
AND hetio45173_1.d = hetio45173_3.d AND hetio45173_2.d = hetio45173_3.s";

/// Query `q_hto4` on Hetionet (Listing 5).
pub const Q_HTO4: &str = "SELECT MIN(hetio45160_0.s) \
FROM hetio45160 AS hetio45160_0, hetio45160 AS hetio45160_1, \
hetio45177, hetio45160 AS hetio45160_3, hetio45159 AS \
hetio45159_4, hetio45159 AS hetio45159_5 \
WHERE hetio45160_0.s = hetio45160_1.s AND hetio45160_0.d = hetio45177.s \
AND hetio45160_1.d = hetio45177.d AND hetio45177.d = hetio45160_3.s \
AND hetio45160_3.s = hetio45159_4.s AND hetio45160_3.d = hetio45159_5.s \
AND hetio45159_4.d = hetio45159_5.d";

/// Query `q_lb` on LSQB (Listing 6).
pub const Q_LB: &str = "SELECT MIN(pkp1.Person1Id) \
FROM City AS CityA \
JOIN City AS CityB ON CityB.isPartOf_CountryId = CityA.isPartOf_CountryId \
JOIN City AS CityC ON CityC.isPartOf_CountryId = CityA.isPartOf_CountryId \
JOIN Person AS PersonA ON PersonA.isLocatedIn_CityId = CityA.CityId \
JOIN Person AS PersonB ON PersonB.isLocatedIn_CityId = CityB.CityId \
JOIN Person_knows_Person AS pkp1 ON pkp1.Person1Id = PersonA.PersonId \
AND pkp1.Person2Id = PersonB.PersonId";

/// All six queries with their paper names and the width parameter `k`
/// used in Table 1 (the query's ConCov-shw).
pub fn all_queries() -> Vec<(&'static str, &'static str, usize)> {
    vec![
        ("q_ds", Q_DS, 2),
        ("q_hto", Q_HTO, 2),
        ("q_hto2", Q_HTO2, 2),
        ("q_hto3", Q_HTO3, 2),
        ("q_hto4", Q_HTO4, 2),
        ("q_lb", Q_LB, 3),
    ]
}
