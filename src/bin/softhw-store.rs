//! `softhw-store` — offline tooling for the persistent decomposition
//! store (`softhw-serve --store`).
//!
//! ```text
//! softhw-store inspect <path>      per-schema summary: structure, dictionary,
//!                                  result counts, heat
//! softhw-store verify  <path>      full offline check: schemas rebuild to their
//!                                  hashes, every witness validates (exit 1 on
//!                                  any problem)
//! softhw-store compact <path>      rewrite the log dropping superseded results
//!                                  and orphaned dictionary bags (atomic)
//! softhw-store top     <path> [n]  the n hottest schemas (default 10) — the
//!                                  warm-start preload order
//! ```
//!
//! Opening a store always runs torn-tail recovery first; `inspect` and
//! `verify` report when bytes were dropped. Exit codes: 0 ok, 1 verify
//! found problems, 2 usage/IO errors.

use softhw_store::Store;
use std::process::ExitCode;

fn usage() -> String {
    "usage: softhw-store <inspect|verify|compact|top> <path> [n]".to_string()
}

fn open(path: &str) -> Result<Store, String> {
    let store = Store::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let stats = store.stats();
    if stats.recovered_bytes > 0 {
        eprintln!(
            "softhw-store: recovery dropped {} corrupt/torn byte(s) from {path}",
            stats.recovered_bytes
        );
    }
    Ok(store)
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, path) = match (args.first(), args.get(1)) {
        (Some(c), Some(p)) => (c.as_str(), p.as_str()),
        _ => return Err(usage()),
    };
    match cmd {
        "inspect" => {
            let store = open(path)?;
            let stats = store.stats();
            println!(
                "{path}: {} bytes, {} schemas, {} results, {} dictionary bags",
                stats.bytes, stats.schemas, stats.results, stats.dict_bags
            );
            println!(
                "{:<18} {:<18} {:>9} {:>7} {:>9} {:>8} {:>6}",
                "hash", "digest", "vertices", "edges", "dict", "results", "heat"
            );
            for s in store.schemas() {
                println!(
                    "{:016x}   {:016x}   {:>9} {:>7} {:>9} {:>8} {:>6}",
                    s.hash, s.digest, s.num_vertices, s.num_edges, s.dict_bags, s.results, s.heat
                );
            }
            Ok(true)
        }
        "verify" => {
            let store = open(path)?;
            let problems = store.verify();
            let stats = store.stats();
            if problems.is_empty() {
                println!(
                    "{path}: ok — {} schemas, {} results, every witness validates",
                    stats.schemas, stats.results
                );
                Ok(true)
            } else {
                for p in &problems {
                    eprintln!("softhw-store: {p}");
                }
                println!("{path}: {} problem(s) found", problems.len());
                Ok(false)
            }
        }
        "compact" => {
            let mut store = open(path)?;
            let (before, after) = store
                .compact()
                .map_err(|e| format!("compaction failed: {e}"))?;
            println!(
                "{path}: {before} -> {after} bytes ({} reclaimed)",
                before.saturating_sub(after)
            );
            Ok(true)
        }
        "top" => {
            let n: usize = match args.get(2) {
                Some(v) => v.parse().map_err(|_| format!("bad count {v:?}"))?,
                None => 10,
            };
            let store = open(path)?;
            println!("{:<18} {:>6} {:>8}  structure", "hash", "heat", "results");
            for s in store.schemas().into_iter().take(n) {
                println!(
                    "{:016x}   {:>6} {:>8}  {} vertices, {} edges",
                    s.hash, s.heat, s.results, s.num_vertices, s.num_edges
                );
            }
            Ok(true)
        }
        _ => Err(usage()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("softhw-store: {e}");
            ExitCode::from(2)
        }
    }
}
