//! `softhw-serve` — the decomposition service: a multi-threaded TCP
//! front-end over the workspace's cross-query caches.
//!
//! ```text
//! softhw-serve [options]
//!   --addr <host:port>   bind address (default 127.0.0.1:7401, :0 = any port)
//!   --workers <n>        connection worker threads (default: cores)
//!   --stripes <n>        cache stripes (default 8)
//!   --cache <n>          per-stripe schema capacity before LRU eviction (default 128)
//!   --max-edges <n>      largest schema accepted (default 100000)
//!   --max-conns <n>      exit after serving n connections (for smoke tests)
//! ```
//!
//! Prints `listening on <addr>` once the socket is bound. See the README
//! for the wire format and an example session; `softhw-cli --connect`
//! speaks the protocol.

use softhw_service::{ServeOptions, Server, ServiceConfig, ServiceState};
use std::process::ExitCode;

struct Args {
    serve: ServeOptions,
    config: ServiceConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut serve = ServeOptions::default();
    let mut config = ServiceConfig::default();
    let mut args = std::env::args().skip(1);
    let num = |args: &mut dyn Iterator<Item = String>, flag: &str| -> Result<usize, String> {
        let v = args.next().ok_or(format!("{flag} needs a value"))?;
        v.parse().map_err(|_| format!("bad {flag} value {v:?}"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => serve.addr = args.next().ok_or("--addr needs a value")?,
            "--workers" => serve.workers = num(&mut args, "--workers")?.max(1),
            "--stripes" => config.stripes = num(&mut args, "--stripes")?.max(1),
            "--cache" => config.cache_capacity = num(&mut args, "--cache")?,
            "--max-edges" => config.max_edges = num(&mut args, "--max-edges")?,
            "--max-conns" => serve.max_conns = Some(num(&mut args, "--max-conns")? as u64),
            "--help" | "-h" => {
                return Err("usage: softhw-serve [--addr host:port] [--workers n] \
                            [--stripes n] [--cache n] [--max-edges n] [--max-conns n]"
                    .to_string())
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args { serve, config })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("softhw-serve: {e}");
            return ExitCode::from(2);
        }
    };
    let state = ServiceState::new(args.config);
    let server = match Server::bind(args.serve, state) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("softhw-serve: bind failed: {e}");
            return ExitCode::from(2);
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            // Announce readiness on stdout so scripts can wait for it.
            println!("listening on {addr}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("softhw-serve: {e}");
            return ExitCode::from(2);
        }
    }
    match server.run() {
        Ok(served) => {
            eprintln!("softhw-serve: served {served} connections, exiting");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("softhw-serve: {e}");
            ExitCode::from(2)
        }
    }
}
