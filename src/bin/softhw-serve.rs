//! `softhw-serve` — the decomposition service: a multi-threaded TCP
//! front-end over the workspace's cross-query caches, optionally backed
//! by the persistent decomposition store.
//!
//! ```text
//! softhw-serve [options]
//!   --addr <host:port>   bind address (default 127.0.0.1:7401, :0 = any port)
//!   --workers <n>        connection worker threads (default: cores)
//!   --stripes <n>        cache stripes (default 8)
//!   --cache <n>          per-stripe schema capacity before LRU eviction (default 128)
//!   --result-cache <n>   per-stripe result-cache capacity (default 1024, 0 = off)
//!   --max-edges <n>      largest schema accepted (default 100000)
//!   --max-conns <n>      exit after serving n connections (for smoke tests)
//!   --queue <n>          pending-connection queue depth; connections past it
//!                        are shed with BUSY instead of waiting (default 128)
//!   --default-deadline <ms>  deadline applied to requests that carry no
//!                        DEADLINE directive of their own (default: none)
//!   --store <path>       persistent store: results survive restarts (created
//!                        if missing; torn tails recovered on open)
//!   --warm <n>           warm-start the n hottest stored schemas (default 64)
//!   --no-pin             do not pin warm-started schemas against LRU eviction
//!   --no-reduce          disable the reduce-before-solve pipeline: solve every
//!                        schema raw (escape hatch; answers are identical, the
//!                        pipeline only changes how they are computed)
//!   --slow-ms <ms>       record the span tree of every request slower than
//!                        ms milliseconds in the slow-query ring (0 records
//!                        everything; dumped via `STATS SLOW` and on shutdown)
//!   --no-obs             disable observability: no traces, no histograms, no
//!                        slow-query ring; METRICS still answers, with zeros
//! ```
//!
//! With `--store`, the boot sequence opens the log (truncating a torn
//! tail back to the last valid record), preloads the hottest schemas
//! into the stripe caches, and prints a `store:` line before the
//! `listening on <addr>` readiness line. On clean exit (`--max-conns`)
//! the write-behind persister drains and fsyncs before the process
//! ends. See the README for the wire format; `softhw-cli --connect`
//! speaks the protocol and `softhw-store` inspects the store offline.
//!
//! SIGINT/SIGTERM trigger a graceful drain: the server stops accepting,
//! cancels in-flight solves against their budgets (clients see `BUSY`),
//! and drains + fsyncs the write-behind store before exiting.

use softhw_service::{ServeOptions, Server, ServiceConfig, ServiceState, ShutdownHandle};
use std::process::ExitCode;

/// Routes SIGINT/SIGTERM to a graceful drain. The handler body is one
/// atomic store ([`ShutdownHandle::shutdown`] is async-signal-safe);
/// the server's own threads do the actual draining.
#[cfg(unix)]
fn install_signal_handlers(handle: ShutdownHandle) {
    use std::sync::OnceLock;
    static HANDLE: OnceLock<ShutdownHandle> = OnceLock::new();
    extern "C" fn on_signal(_sig: i32) {
        if let Some(h) = HANDLE.get() {
            h.shutdown();
        }
    }
    // Set before registering, so the handler can never observe an
    // uninitialised slot.
    let _ = HANDLE.set(handle);
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `on_signal` is an `extern "C"` fn whose body is one
    // OnceLock read plus an atomic store ([`ShutdownHandle::shutdown`])
    // — both async-signal-safe, no allocation, no locks. The handler
    // slot is initialized before registration, so the handler can never
    // observe an empty OnceLock racing its own installation.
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers(_handle: ShutdownHandle) {}

struct Args {
    serve: ServeOptions,
    config: ServiceConfig,
    store: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut serve = ServeOptions::default();
    let mut config = ServiceConfig::default();
    let mut store = None;
    let mut args = std::env::args().skip(1);
    let num = |args: &mut dyn Iterator<Item = String>, flag: &str| -> Result<usize, String> {
        let v = args.next().ok_or(format!("{flag} needs a value"))?;
        v.parse().map_err(|_| format!("bad {flag} value {v:?}"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => serve.addr = args.next().ok_or("--addr needs a value")?,
            "--workers" => serve.workers = num(&mut args, "--workers")?.max(1),
            "--stripes" => config.stripes = num(&mut args, "--stripes")?.max(1),
            "--cache" => config.cache_capacity = num(&mut args, "--cache")?,
            "--result-cache" => config.result_cache_capacity = num(&mut args, "--result-cache")?,
            "--max-edges" => config.max_edges = num(&mut args, "--max-edges")?,
            "--max-conns" => serve.max_conns = Some(num(&mut args, "--max-conns")? as u64),
            "--queue" => serve.queue_depth = num(&mut args, "--queue")?.max(1),
            "--default-deadline" => {
                config.default_deadline_ms = Some(num(&mut args, "--default-deadline")? as u64)
            }
            "--store" => store = Some(args.next().ok_or("--store needs a path")?),
            "--warm" => config.warm_start = num(&mut args, "--warm")?,
            "--no-pin" => config.pin_warm = false,
            "--no-reduce" => config.no_reduce = true,
            "--slow-ms" => config.slow_ms = Some(num(&mut args, "--slow-ms")? as u64),
            "--no-obs" => config.obs_enabled = false,
            "--help" | "-h" => {
                return Err("usage: softhw-serve [--addr host:port] [--workers n] \
                            [--stripes n] [--cache n] [--result-cache n] [--max-edges n] \
                            [--max-conns n] [--queue n] [--default-deadline ms] \
                            [--store path] [--warm n] [--no-pin] [--no-reduce] \
                            [--slow-ms ms] [--no-obs]"
                    .to_string())
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args {
        serve,
        config,
        store,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("softhw-serve: {e}");
            return ExitCode::from(2);
        }
    };
    if !args.config.obs_enabled {
        // Turn the process-wide span gate off too, so instrumented
        // library paths skip even the thread-local probe.
        softhw_obs::set_enabled(false);
    }
    let state = match &args.store {
        Some(path) => {
            let store = match softhw_store::Store::open(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("softhw-serve: cannot open store {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let stats = store.stats();
            if stats.recovered_bytes > 0 {
                eprintln!(
                    "softhw-serve: store recovery dropped {} corrupt/torn byte(s)",
                    stats.recovered_bytes
                );
            }
            println!(
                "store: {path} ({} schemas, {} results, {} bytes)",
                stats.schemas, stats.results, stats.bytes
            );
            ServiceState::with_store(args.config, store)
        }
        None => ServiceState::new(args.config),
    };
    let server = match Server::bind(args.serve, state) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("softhw-serve: bind failed: {e}");
            return ExitCode::from(2);
        }
    };
    install_signal_handlers(server.shutdown_handle());
    match server.local_addr() {
        Ok(addr) => {
            // Announce the protocol revision, then readiness on stdout
            // so scripts can wait for it.
            println!(
                "protocol {} verbs {}",
                softhw_service::PROTOCOL_VERSION,
                softhw_service::PROTOCOL_VERBS
            );
            println!("listening on {addr}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("softhw-serve: {e}");
            return ExitCode::from(2);
        }
    }
    match server.run_state() {
        Ok((served, state)) => {
            // Dump the slow-query log before the state drops, so an
            // operator gets the span trees of the slowest requests even
            // without having asked for `STATS SLOW` while live.
            let slow = state.slow_log();
            if !slow.is_empty() {
                eprintln!("softhw-serve: slow-query log ({} entries):", {
                    // Each entry renders as a header plus one line per
                    // span; count headers, not lines.
                    slow.iter().filter(|l| !l.starts_with(' ')).count()
                });
                for line in &slow {
                    eprintln!("  {line}");
                }
            }
            // Dropping the state joins the write-behind persister: the
            // store is durable past here.
            eprintln!("softhw-serve: served {served} connections, exiting");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("softhw-serve: {e}");
            ExitCode::from(2)
        }
    }
}
