//! `softhw-cli` — command-line decomposer in the style of det-k-decomp /
//! BalancedGo: read a hypergraph in the HyperBench text format, compute
//! widths and decompositions.
//!
//! ```text
//! softhw-cli <file.hg> [options]
//!   --width <k>      decide shw(H) <= k instead of computing shw exactly
//!   --measure <m>    shw (default) | hw | ghw | shw1 | all
//!   --concov         restrict to ConCov candidate bags
//!   --no-reduce      skip the reduction pipeline (subsumption, peeling,
//!                    component splitting) before exact shw/hw solving;
//!                    local mode only — the server's pipeline is set by
//!                    `softhw-serve --no-reduce`
//!   --print          print the witness decomposition
//!   --stats          print structural statistics only
//!   --connect <addr> client mode: send the request to a softhw-serve
//!                    instance instead of solving locally (same output
//!                    and exit codes except --stats, which shows the
//!                    server's fields incl. cache counters; returned
//!                    decompositions are validated locally before
//!                    printing)
//!   --deadline <ms>  (with --connect) attach a DEADLINE to each request;
//!                    a server-side TIMEOUT is reported as an error
//!   --retries <n>    (with --connect) retry connect failures, transport
//!                    errors, and BUSY shedding up to n times with
//!                    jittered exponential backoff, honouring the
//!                    server's BUSY retry-after hint (default 3)
//!   --metrics        (with --connect; no input file) fetch the server's
//!                    Prometheus-style METRICS exposition and print it;
//!                    every line is validated before printing and a
//!                    malformed exposition exits 2
//! ```
//!
//! Exit code 0 when a decomposition at the requested width exists (or the
//! width was computed), 1 when a `--width` check rejects, 2 on errors.

use softhw::core::constraints::{concov_filter, Trivial};
use softhw::core::ctd_opt::best;
use softhw::core::soft::{soft_bags_with, SoftLimits};
use softhw::core::soft_iter;
use softhw::core::{hw, shw, DecompCache, SolveSpec, Solved};
use softhw::hypergraph::{parse_hypergraph, Hypergraph};
use softhw_service::{roundtrip, EvalKind, Request, RequestClass, Response};
use std::net::TcpStream;
use std::process::ExitCode;

struct Options {
    file: String,
    width: Option<usize>,
    measure: String,
    concov: bool,
    no_reduce: bool,
    print: bool,
    stats: bool,
    connect: Option<String>,
    deadline_ms: Option<u64>,
    retries: u32,
    metrics: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        file: String::new(),
        width: None,
        measure: "shw".to_string(),
        concov: false,
        no_reduce: false,
        print: false,
        stats: false,
        connect: None,
        deadline_ms: None,
        retries: 3,
        metrics: false,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--width" => {
                let v = args.next().ok_or("--width needs a value")?;
                opts.width = Some(v.parse().map_err(|_| format!("bad width {v:?}"))?);
            }
            "--measure" => {
                opts.measure = args.next().ok_or("--measure needs a value")?;
                if !["shw", "hw", "ghw", "shw1", "all"].contains(&opts.measure.as_str()) {
                    return Err(format!("unknown measure {:?}", opts.measure));
                }
            }
            "--concov" => opts.concov = true,
            "--no-reduce" => opts.no_reduce = true,
            "--print" => opts.print = true,
            "--stats" => opts.stats = true,
            "--connect" => opts.connect = Some(args.next().ok_or("--connect needs an address")?),
            "--deadline" => {
                let v = args.next().ok_or("--deadline needs a value")?;
                opts.deadline_ms = Some(v.parse().map_err(|_| format!("bad deadline {v:?}"))?);
            }
            "--retries" => {
                let v = args.next().ok_or("--retries needs a value")?;
                opts.retries = v.parse().map_err(|_| format!("bad retries {v:?}"))?;
            }
            "--metrics" => opts.metrics = true,
            "--help" | "-h" => {
                return Err("usage: softhw-cli <file.hg> [--width k] \
                            [--measure shw|hw|ghw|shw1|all] [--concov] [--no-reduce] \
                            [--print] [--stats] [--connect host:port] [--deadline ms] \
                            [--retries n] | softhw-cli --connect host:port --metrics"
                    .to_string())
            }
            f if opts.file.is_empty() && !f.starts_with('-') => opts.file = f.to_string(),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.metrics {
        if opts.connect.is_none() {
            return Err("--metrics asks a server for its exposition; add --connect".to_string());
        }
        if !opts.file.is_empty() {
            return Err("--metrics takes no input file".to_string());
        }
    } else if opts.file.is_empty() {
        return Err("no input file (use --help)".to_string());
    }
    Ok(opts)
}

fn candidate_bags(
    h: &Hypergraph,
    k: usize,
    concov: bool,
) -> Result<Vec<softhw::hypergraph::BitSet>, String> {
    let bags = soft_bags_with(h, k, &SoftLimits::default()).map_err(|e| e.to_string())?;
    Ok(if concov {
        concov_filter(h, k, &bags)
    } else {
        bags
    })
}

/// A connection to `softhw-serve` with retry semantics: connect
/// failures, transport errors, and `BUSY` shedding are retried up to
/// `retries` times with jittered exponential backoff (the server's
/// `BUSY <retry-after-ms>` hint is honoured as the wait floor). The
/// TCP connection is **reused across requests and retries** — the V1
/// server sheds overload per request and keeps the connection open, so
/// only connect failures and transport errors reconnect; a `BUSY`
/// backs off on the same socket. Each fresh connection starts with a
/// `HELLO` handshake (a legacy server answers `ERR`, which is equally
/// conclusive — the request grammar is a superset). A server-side
/// `TIMEOUT` is *not* retried — the deadline the user set has been
/// spent; retrying would just spend it again.
struct Remote {
    addr: String,
    deadline_ms: Option<u64>,
    retries: u32,
    stream: Option<TcpStream>,
    rng: rand::rngs::SmallRng,
}

impl Remote {
    fn new(opts: &Options) -> Remote {
        use rand::SeedableRng as _;
        Remote {
            addr: opts.connect.clone().unwrap_or_default(),
            deadline_ms: opts.deadline_ms,
            retries: opts.retries,
            stream: None,
            // Seed from the pid so concurrent clients retrying against
            // an overloaded server do not thunder in lockstep.
            rng: rand::rngs::SmallRng::seed_from_u64(std::process::id() as u64),
        }
    }

    /// Sleeps `hint + uniform(0..=50ms * 2^attempt)` (capped at 2s of
    /// exponential part), where `hint` is the server's retry-after.
    fn backoff(&mut self, attempt: u32, hint_ms: u64) {
        use rand::Rng as _;
        let base = 50u64.saturating_mul(1 << attempt.min(5)).min(2_000);
        let wait = hint_ms + self.rng.gen_range(0..=base);
        std::thread::sleep(std::time::Duration::from_millis(wait));
    }

    fn ask(&mut self, class: RequestClass, text: &str) -> Result<Response, String> {
        let mut attempt = 0u32;
        loop {
            // `reconnect` controls whether the retry tears the stream
            // down: transport-level failures do, a BUSY shed does not —
            // the server kept the connection open and the next attempt
            // reuses it.
            let mut retry = |this: &mut Remote,
                             why: String,
                             hint_ms: u64,
                             reconnect: bool|
             -> Result<(), String> {
                if reconnect {
                    this.stream = None;
                }
                if attempt >= this.retries {
                    return Err(why);
                }
                eprintln!("softhw-cli: {why}; retry {}/{}", attempt + 1, this.retries);
                this.backoff(attempt, hint_ms);
                attempt += 1;
                Ok(())
            };
            if self.stream.is_none() {
                match TcpStream::connect(&self.addr) {
                    Ok(mut s) => {
                        // V1 handshake, once per fresh connection. Any
                        // frame back — HELLO from a V1 server, ERR from
                        // a legacy one — proves the transport; only an
                        // I/O failure counts against the retries.
                        match roundtrip(&mut s, &Request::new(RequestClass::Hello, "")) {
                            Ok(_) => self.stream = Some(s),
                            Err(e) => {
                                retry(self, format!("handshake {}: {e}", self.addr), 0, true)?;
                                continue;
                            }
                        }
                    }
                    Err(e) => {
                        retry(self, format!("connect {}: {e}", self.addr), 0, true)?;
                        continue;
                    }
                }
            }
            let mut req = Request::new(class, text);
            req.deadline_ms = self.deadline_ms;
            let stream = self.stream.as_mut().expect("stream set above");
            match roundtrip(stream, &req) {
                Ok(Response::Busy { retry_after_ms }) => {
                    retry(self, "server busy".to_string(), retry_after_ms, false)?;
                }
                Ok(Response::Timeout) => {
                    return Err(format!(
                        "server gave up: deadline{} exceeded",
                        self.deadline_ms
                            .map(|ms| format!(" of {ms}ms"))
                            .unwrap_or_default()
                    ))
                }
                Ok(Response::Error { kind, message }) => {
                    return Err(format!("server error [{kind}] {message}"))
                }
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    retry(self, format!("{}: {e}", self.addr), 0, true)?;
                }
            }
        }
    }
}

/// `--metrics`: fetch the server's Prometheus-style text exposition and
/// print it. Every line is validated *before* anything is printed, so a
/// scrape wired through this subcommand fails loudly (exit 2) instead
/// of feeding a collector garbage.
fn run_metrics(opts: &Options) -> Result<bool, String> {
    let mut remote = Remote::new(opts);
    match remote.ask(RequestClass::Metrics, "")? {
        Response::Metrics { lines } => {
            validate_exposition(&lines)?;
            for line in &lines {
                println!("{line}");
            }
            Ok(true)
        }
        other => Err(format!("unexpected response {other:?}")),
    }
}

/// Checks text-exposition shape: `# TYPE <name> counter|gauge|histogram`
/// / `# HELP` comments, and `name[{labels}] value` samples with a valid
/// metric identifier and a finite numeric value.
fn validate_exposition(lines: &[String]) -> Result<(), String> {
    let ident_ok = |s: &str| {
        let mut chars = s.chars();
        chars
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };
    for (i, line) in lines.iter().enumerate() {
        let bad =
            |why: &str| Err(format!("unparseable exposition line {}: {why}: {line:?}", i + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut toks = rest.split_whitespace();
            match toks.next() {
                Some("TYPE") => {
                    let name = toks.next().unwrap_or("");
                    let kind = toks.next().unwrap_or("");
                    if !ident_ok(name) || !["counter", "gauge", "histogram"].contains(&kind) {
                        return bad("malformed TYPE comment");
                    }
                }
                Some("HELP") => {}
                _ => return bad("unknown comment kind"),
            }
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            return bad("no value field");
        };
        let name = series.split('{').next().unwrap_or("");
        if !ident_ok(name) {
            return bad("invalid metric name");
        }
        if series.contains('{') && !series.ends_with('}') {
            return bad("unterminated label set");
        }
        if !value.parse::<f64>().is_ok_and(f64::is_finite) {
            return bad("non-numeric sample value");
        }
    }
    Ok(())
}

/// Client mode: the same questions, answered by a `softhw-serve`
/// instance. Width/decision output lines and exit codes match local
/// mode exactly; witness decompositions are decoded from the wire frame
/// and validated against the locally parsed hypergraph before anything
/// is printed. The one deliberate divergence is `--stats`: remote stats
/// are the server's `key = value` fields (structural stats *plus* its
/// cache counters, which local mode cannot know), not the local Debug
/// render.
fn run_remote(opts: &Options, text: &str, h: &Hypergraph) -> Result<bool, String> {
    let mut remote = Remote::new(opts);
    let mut ask = |class: RequestClass| -> Result<Response, String> { remote.ask(class, text) };
    let decode =
        |frame: softhw_service::TdFrame| -> Result<softhw::core::TreeDecomposition, String> {
            let td = frame.to_td().map_err(|e| e.to_string())?;
            td.validate(h)
                .map_err(|e| format!("server returned an invalid decomposition: {e:?}"))?;
            Ok(td)
        };
    let constraint_label = if opts.concov { "ConCov-" } else { "" };
    let leq_class = |k: usize| {
        if opts.concov {
            RequestClass::Best(EvalKind::ConCov, k)
        } else {
            RequestClass::ShwLeq(k)
        }
    };
    if opts.stats {
        match ask(RequestClass::Stats)? {
            Response::Stats { fields } => {
                for (key, value) in fields {
                    println!("{key} = {value}");
                }
                return Ok(true);
            }
            other => return Err(format!("unexpected response {other:?}")),
        }
    }
    match (opts.measure.as_str(), opts.width) {
        ("shw", Some(k)) => match ask(leq_class(k))? {
            Response::Decision { td, .. } => match td {
                Some(frame) => {
                    let td = decode(frame)?;
                    println!("{constraint_label}shw <= {k}: yes");
                    if opts.print {
                        print!("{}", td.render(h));
                    }
                    Ok(true)
                }
                None => {
                    println!("{constraint_label}shw <= {k}: no");
                    Ok(false)
                }
            },
            other => Err(format!("unexpected response {other:?}")),
        },
        ("shw", None) if opts.concov => {
            // No exact ConCov class on the wire: sweep the decision.
            for k in 1..=h.num_edges().max(1) {
                if let Response::Decision {
                    td: Some(frame), ..
                } = ask(leq_class(k))?
                {
                    let td = decode(frame)?;
                    println!("ConCov-shw = {k}");
                    if opts.print {
                        print!("{}", td.render(h));
                    }
                    return Ok(true);
                }
            }
            Err("no decomposition up to |E| — disconnected input?".to_string())
        }
        ("shw", None) => match ask(RequestClass::Shw)? {
            Response::Width { width, td, .. } => {
                let td = decode(td)?;
                println!("shw = {width}");
                if opts.print {
                    print!("{}", td.render(h));
                }
                Ok(true)
            }
            other => Err(format!("unexpected response {other:?}")),
        },
        ("hw", w) => {
            if opts.concov {
                return Err("--concov is a CTD constraint; use --measure shw".into());
            }
            match w {
                Some(k) => match ask(RequestClass::HwLeq(k))? {
                    Response::Decision { td, .. } => match td {
                        Some(frame) => {
                            let td = decode(frame)?;
                            println!("hw <= {k}: yes");
                            if opts.print {
                                let g = softhw::core::ghd::Ghd::from_td(h, td, k)
                                    .ok_or("server witness has no width-k covers")?;
                                print!("{}", g.render(h));
                            }
                            Ok(true)
                        }
                        None => {
                            println!("hw <= {k}: no");
                            Ok(false)
                        }
                    },
                    other => Err(format!("unexpected response {other:?}")),
                },
                None => match ask(RequestClass::Hw)? {
                    Response::Width { width, td, .. } => {
                        let td = decode(td)?;
                        println!("hw = {width}");
                        if opts.print {
                            let g = softhw::core::ghd::Ghd::from_td(h, td, width)
                                .ok_or("server witness has no width-k covers")?;
                            print!("{}", g.render(h));
                        }
                        Ok(true)
                    }
                    other => Err(format!("unexpected response {other:?}")),
                },
            }
        }
        (m, _) => Err(format!("--measure {m} is not supported over --connect")),
    }
}

fn run() -> Result<bool, String> {
    let opts = parse_args()?;
    if opts.metrics {
        return run_metrics(&opts);
    }
    let text = std::fs::read_to_string(&opts.file)
        .map_err(|e| format!("cannot read {}: {e}", opts.file))?;
    let h = parse_hypergraph(&text).map_err(|e| e.to_string())?;
    eprintln!(
        "parsed {}: {} vertices, {} edges",
        opts.file,
        h.num_vertices(),
        h.num_edges()
    );
    if opts.connect.is_some() {
        if opts.no_reduce {
            return Err(
                "--no-reduce is a local-solve flag; the server's pipeline is set by \
                 `softhw-serve --no-reduce`"
                    .to_string(),
            );
        }
        return run_remote(&opts, &text, &h);
    }
    if opts.deadline_ms.is_some() {
        return Err(
            "--deadline applies to --connect requests; local solves run to completion".to_string(),
        );
    }
    if opts.stats {
        println!("{:#?}", softhw::hypergraph::stats::stats(&h));
        return Ok(true);
    }
    let constraint_label = if opts.concov { "ConCov-" } else { "" };
    let decide = |k: usize| -> Result<Option<softhw::core::TreeDecomposition>, String> {
        let bags = candidate_bags(&h, k, opts.concov)?;
        Ok(best(&h, &bags, &Trivial).map(|(td, ())| td))
    };
    // The unconstrained solves all go through the unified SolveSpec
    // entry point (the same one the service dispatches on); only the
    // ConCov-constrained paths keep the candidate-filter + `best`
    // machinery, which has no spec formulation.
    let mut cache = DecompCache::new();
    match (opts.measure.as_str(), opts.width) {
        ("shw", Some(k)) if opts.concov => {
            let td = decide(k)?;
            match td {
                Some(td) => {
                    println!("{constraint_label}shw <= {k}: yes");
                    if opts.print {
                        print!("{}", td.render(&h));
                    }
                    Ok(true)
                }
                None => {
                    println!("{constraint_label}shw <= {k}: no");
                    Ok(false)
                }
            }
        }
        ("shw", Some(k)) => {
            match cache
                .solve(&h, &SolveSpec::shw_leq(k))
                .map_err(|e| e.to_string())?
            {
                Solved::ShwDecision(Some(td)) => {
                    println!("shw <= {k}: yes");
                    if opts.print {
                        print!("{}", td.render(&h));
                    }
                    Ok(true)
                }
                Solved::ShwDecision(None) => {
                    println!("shw <= {k}: no");
                    Ok(false)
                }
                _ => unreachable!("shw_leq spec yields a ShwDecision"),
            }
        }
        ("shw", None) => {
            if opts.concov {
                // No spec formulation for the ConCov constraint: sweep
                // the constrained decision per width.
                for k in 1..=h.num_edges().max(1) {
                    if let Some(td) = decide(k)? {
                        println!("{constraint_label}shw = {k}");
                        if opts.print {
                            print!("{}", td.render(&h));
                        }
                        return Ok(true);
                    }
                }
                return Err("no decomposition up to |E| — disconnected input?".to_string());
            }
            // Exact shw goes through the reduce-before-solve front door
            // (simplify, sweep each reduced piece, lift the witnesses);
            // `--no-reduce` keeps the raw per-width sweep.
            match cache
                .solve(&h, &SolveSpec::shw().with_reduce(!opts.no_reduce))
                .map_err(|e| e.to_string())?
            {
                Solved::ShwWidth(k, td) => {
                    println!("shw = {k}");
                    if opts.print {
                        print!("{}", td.render(&h));
                    }
                    Ok(true)
                }
                _ => unreachable!("shw spec yields a ShwWidth"),
            }
        }
        ("hw", w) => {
            if opts.concov {
                return Err("--concov is a CTD constraint; use --measure shw".into());
            }
            match w {
                Some(k) => match cache
                    .solve(&h, &SolveSpec::hw_leq(k))
                    .map_err(|e| e.to_string())?
                {
                    Solved::HwDecision(Some(g)) => {
                        println!("hw <= {k}: yes");
                        if opts.print {
                            print!("{}", g.render(&h));
                        }
                        Ok(true)
                    }
                    Solved::HwDecision(None) => {
                        println!("hw <= {k}: no");
                        Ok(false)
                    }
                    _ => unreachable!("hw_leq spec yields a HwDecision"),
                },
                None => match cache
                    .solve(&h, &SolveSpec::hw().with_reduce(!opts.no_reduce))
                    .map_err(|e| e.to_string())?
                {
                    Solved::HwWidth(k, g) => {
                        println!("hw = {k}");
                        if opts.print {
                            print!("{}", g.render(&h));
                        }
                        Ok(true)
                    }
                    _ => unreachable!("hw spec yields a HwWidth"),
                },
            }
        }
        ("ghw", w) => {
            let limits = SoftLimits::default();
            match w {
                Some(k) => {
                    let td = soft_iter::ghw_leq_via_fixpoint(&h, k, &limits)
                        .map_err(|e| e.to_string())?;
                    println!("ghw <= {k}: {}", if td.is_some() { "yes" } else { "no" });
                    Ok(td.is_some())
                }
                None => {
                    let k = soft_iter::ghw(&h, &limits).map_err(|e| e.to_string())?;
                    println!("ghw = {k}");
                    Ok(true)
                }
            }
        }
        ("shw1", w) => {
            let limits = SoftLimits::default();
            match w {
                Some(k) => {
                    let td = soft_iter::shw_i_leq(&h, k, 1, &limits).map_err(|e| e.to_string())?;
                    println!("shw1 <= {k}: {}", if td.is_some() { "yes" } else { "no" });
                    Ok(td.is_some())
                }
                None => {
                    let k = soft_iter::shw_i(&h, 1, &limits).map_err(|e| e.to_string())?;
                    println!("shw1 = {k}");
                    Ok(true)
                }
            }
        }
        ("all", _) => {
            let (s, c) = if opts.no_reduce {
                (shw::shw_raw(&h).0, hw::hw_raw(&h).0)
            } else {
                (shw::shw(&h).0, hw::hw(&h).0)
            };
            let limits = SoftLimits::default();
            let s1 = soft_iter::shw_i(&h, 1, &limits).map_err(|e| e.to_string())?;
            let g = soft_iter::ghw(&h, &limits).map_err(|e| e.to_string())?;
            println!("ghw = {g}, shw1 = {s1}, shw = {s}, hw = {c}");
            Ok(true)
        }
        _ => unreachable!("measure validated in parse_args"),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("softhw-cli: {e}");
            ExitCode::from(2)
        }
    }
}
