//! `softhw-cli` — command-line decomposer in the style of det-k-decomp /
//! BalancedGo: read a hypergraph in the HyperBench text format, compute
//! widths and decompositions.
//!
//! ```text
//! softhw-cli <file.hg> [options]
//!   --width <k>      decide shw(H) <= k instead of computing shw exactly
//!   --measure <m>    shw (default) | hw | ghw | shw1 | all
//!   --concov         restrict to ConCov candidate bags
//!   --print          print the witness decomposition
//!   --stats          print structural statistics only
//! ```
//!
//! Exit code 0 when a decomposition at the requested width exists (or the
//! width was computed), 1 when a `--width` check rejects, 2 on errors.

use softhw::core::constraints::{concov_filter, Trivial};
use softhw::core::ctd_opt::best;
use softhw::core::soft::{soft_bags_with, SoftLimits};
use softhw::core::soft_iter;
use softhw::core::{hw, shw};
use softhw::hypergraph::{parse_hypergraph, Hypergraph};
use std::process::ExitCode;

struct Options {
    file: String,
    width: Option<usize>,
    measure: String,
    concov: bool,
    print: bool,
    stats: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        file: String::new(),
        width: None,
        measure: "shw".to_string(),
        concov: false,
        print: false,
        stats: false,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--width" => {
                let v = args.next().ok_or("--width needs a value")?;
                opts.width = Some(v.parse().map_err(|_| format!("bad width {v:?}"))?);
            }
            "--measure" => {
                opts.measure = args.next().ok_or("--measure needs a value")?;
                if !["shw", "hw", "ghw", "shw1", "all"].contains(&opts.measure.as_str()) {
                    return Err(format!("unknown measure {:?}", opts.measure));
                }
            }
            "--concov" => opts.concov = true,
            "--print" => opts.print = true,
            "--stats" => opts.stats = true,
            "--help" | "-h" => {
                return Err("usage: softhw-cli <file.hg> [--width k] \
                            [--measure shw|hw|ghw|shw1|all] [--concov] [--print] [--stats]"
                    .to_string())
            }
            f if opts.file.is_empty() && !f.starts_with('-') => opts.file = f.to_string(),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.file.is_empty() {
        return Err("no input file (use --help)".to_string());
    }
    Ok(opts)
}

fn candidate_bags(
    h: &Hypergraph,
    k: usize,
    concov: bool,
) -> Result<Vec<softhw::hypergraph::BitSet>, String> {
    let bags = soft_bags_with(h, k, &SoftLimits::default()).map_err(|e| e.to_string())?;
    Ok(if concov {
        concov_filter(h, k, &bags)
    } else {
        bags
    })
}

fn run() -> Result<bool, String> {
    let opts = parse_args()?;
    let text = std::fs::read_to_string(&opts.file)
        .map_err(|e| format!("cannot read {}: {e}", opts.file))?;
    let h = parse_hypergraph(&text).map_err(|e| e.to_string())?;
    eprintln!(
        "parsed {}: {} vertices, {} edges",
        opts.file,
        h.num_vertices(),
        h.num_edges()
    );
    if opts.stats {
        println!("{:#?}", softhw::hypergraph::stats::stats(&h));
        return Ok(true);
    }
    let constraint_label = if opts.concov { "ConCov-" } else { "" };
    let decide = |k: usize| -> Result<Option<softhw::core::TreeDecomposition>, String> {
        let bags = candidate_bags(&h, k, opts.concov)?;
        Ok(best(&h, &bags, &Trivial).map(|(td, ())| td))
    };
    match (opts.measure.as_str(), opts.width) {
        ("shw", Some(k)) => {
            let td = decide(k)?;
            match td {
                Some(td) => {
                    println!("{constraint_label}shw <= {k}: yes");
                    if opts.print {
                        print!("{}", td.render(&h));
                    }
                    Ok(true)
                }
                None => {
                    println!("{constraint_label}shw <= {k}: no");
                    Ok(false)
                }
            }
        }
        ("shw", None) => {
            for k in 1..=h.num_edges().max(1) {
                if let Some(td) = decide(k)? {
                    println!("{constraint_label}shw = {k}");
                    if opts.print {
                        print!("{}", td.render(&h));
                    }
                    return Ok(true);
                }
            }
            Err("no decomposition up to |E| — disconnected input?".to_string())
        }
        ("hw", w) => {
            if opts.concov {
                return Err("--concov is a CTD constraint; use --measure shw".into());
            }
            match w {
                Some(k) => match hw::hw_leq(&h, k) {
                    Some(g) => {
                        println!("hw <= {k}: yes");
                        if opts.print {
                            print!("{}", g.render(&h));
                        }
                        Ok(true)
                    }
                    None => {
                        println!("hw <= {k}: no");
                        Ok(false)
                    }
                },
                None => {
                    let (k, g) = hw::hw(&h);
                    println!("hw = {k}");
                    if opts.print {
                        print!("{}", g.render(&h));
                    }
                    Ok(true)
                }
            }
        }
        ("ghw", w) => {
            let limits = SoftLimits::default();
            match w {
                Some(k) => {
                    let td = soft_iter::ghw_leq_via_fixpoint(&h, k, &limits)
                        .map_err(|e| e.to_string())?;
                    println!("ghw <= {k}: {}", if td.is_some() { "yes" } else { "no" });
                    Ok(td.is_some())
                }
                None => {
                    let k = soft_iter::ghw(&h, &limits).map_err(|e| e.to_string())?;
                    println!("ghw = {k}");
                    Ok(true)
                }
            }
        }
        ("shw1", w) => {
            let limits = SoftLimits::default();
            match w {
                Some(k) => {
                    let td = soft_iter::shw_i_leq(&h, k, 1, &limits).map_err(|e| e.to_string())?;
                    println!("shw1 <= {k}: {}", if td.is_some() { "yes" } else { "no" });
                    Ok(td.is_some())
                }
                None => {
                    let k = soft_iter::shw_i(&h, 1, &limits).map_err(|e| e.to_string())?;
                    println!("shw1 = {k}");
                    Ok(true)
                }
            }
        }
        ("all", _) => {
            let (s, _) = shw::shw(&h);
            let (c, _) = hw::hw(&h);
            let limits = SoftLimits::default();
            let s1 = soft_iter::shw_i(&h, 1, &limits).map_err(|e| e.to_string())?;
            let g = soft_iter::ghw(&h, &limits).map_err(|e| e.to_string())?;
            println!("ghw = {g}, shw1 = {s1}, shw = {s}, hw = {c}");
            Ok(true)
        }
        _ => unreachable!("measure validated in parse_args"),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("softhw-cli: {e}");
            ExitCode::from(2)
        }
    }
}
