//! # softhw — Soft and Constrained Hypertree Width
//!
//! A from-scratch Rust implementation of *Soft and Constrained Hypertree
//! Width* (PODS 2025): soft hypertree decompositions computed through
//! candidate tree decompositions, the iterated `shw_i` hierarchy
//! converging to `ghw`, constrained and preference-guided decomposition
//! (ConCov / ShallowCyc / PartClust / cost models), the classical `hw`
//! baseline, the (institutional) robber & marshals games, and a complete
//! query-evaluation substrate (SQL-subset frontend, in-memory relational
//! engine, Yannakakis execution, the paper's two cost functions, and the
//! three synthetic benchmark workloads).
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! namespace so the examples and downstream users have a single import.
//!
//! ```
//! use softhw::prelude::*;
//!
//! let h = softhw::hypergraph::named::h2();
//! let (width, td) = softhw::core::shw::shw(&h);
//! assert_eq!(width, 2);            // Example 1 of the paper
//! assert!(td.validate(&h).is_ok());
//! ```

#![warn(missing_docs)]

pub use softhw_core as core;
pub use softhw_engine as engine;
pub use softhw_hypergraph as hypergraph;
pub use softhw_query as query;
pub use softhw_workloads as workloads;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use softhw_core::constraints::{concov_filter, ConCov, Trivial};
    pub use softhw_core::ctd_opt::{best, enumerate_all, top_n, TdEvaluator};
    pub use softhw_core::{candidate_td, soft_bags, Ghd, TreeDecomposition};
    pub use softhw_engine::{Database, Relation, Table};
    pub use softhw_hypergraph::{BitSet, Hypergraph, HypergraphBuilder};
    pub use softhw_query::{atom_relations, bind, build_plan, execute, parse_sql};
}
