//! The width hierarchy of the paper (Sections 4–5):
//!
//! ```text
//! ghw = shw_∞ <= ... <= shw_1 <= shw_0 = shw <= hw <= 3·ghw + 1
//! ```
//!
//! computed exactly on small hypergraphs via the `Soft^i` fixpoint
//! (Theorem 7), and verified on the paper's separating examples.
//!
//! ```sh
//! cargo run --release --example width_hierarchy
//! ```

use softhw::core::soft::SoftLimits;
use softhw::core::soft_iter::{ghw, shw_i};
use softhw::core::{hw, shw};
use softhw::hypergraph::named;
use softhw::hypergraph::Hypergraph;

fn report(name: &str, h: &Hypergraph) {
    let limits = SoftLimits::default();
    let (hw_v, _) = hw::hw(h);
    let (shw_v, _) = shw::shw(h);
    let shw1 = shw_i(h, 1, &limits).expect("within limits");
    let ghw_v = ghw(h, &limits).expect("within limits");
    println!("{name:<18} ghw = {ghw_v}  shw1 = {shw1}  shw = {shw_v}  hw = {hw_v}");
    assert!(ghw_v <= shw1 && shw1 <= shw_v && shw_v <= hw_v);
    assert!(hw_v <= 3 * ghw_v + 1, "hw <= 3·ghw + 1 (paper, Section 8)");
}

fn main() {
    println!("width hierarchy: ghw <= shw_1 <= shw <= hw (paper Sections 4-5)\n");
    report("triangle", &{
        let mut b = softhw::hypergraph::HypergraphBuilder::new();
        b.edge("e1", &["x", "y"]);
        b.edge("e2", &["y", "z"]);
        b.edge("e3", &["z", "x"]);
        b.build()
    });
    for n in [4, 5, 6, 7] {
        report(&format!("cycle C{n}"), &named::cycle(n));
    }
    report("4-cycle query", &named::four_cycle_query());
    report("grid 2x3", &named::grid(2, 3));
    // The paper's separating example: shw(H2) = ghw(H2) = 2 < hw(H2) = 3.
    report("H2 (Example 1)", &named::h2());
    println!("\nH2 separates shw from hw — the headline of the paper.");
    println!("(H3/H'3 separations are machine-verified in the `hierarchy` binary);");
    println!("run: cargo run --release -p softhw-bench --bin hierarchy");
}
