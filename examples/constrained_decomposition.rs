//! Constrained decompositions (Section 6 of the paper): how `ConCov`
//! rules out Cartesian products (Example 3), how width can grow under
//! constraints (`C5`), and how `PartClust` clusters a distributed query's
//! partitions into disjoint subtrees (Example 4).
//!
//! ```sh
//! cargo run --example constrained_decomposition
//! ```

use softhw::core::constraints::{concov_filter, PartClust, ShallowCyc, Trivial};
use softhw::core::ctd_opt::best;
use softhw::core::soft::soft_bags;
use softhw::core::{candidate_td, cover};
use softhw::hypergraph::named;

fn main() {
    // --- Example 3: the 4-cycle and Cartesian products -----------------
    let h = named::four_cycle_query();
    let bags = soft_bags(&h, 2);
    let td = candidate_td(&h, &bags).expect("shw = 2");
    println!("Unconstrained width-2 decomposition of the 4-cycle:");
    println!("{}", td.render(&h));
    for bag in td.bags() {
        let cover = cover::find_cover(&h, bag, 2).expect("width 2");
        let connected = cover::edges_connected(&h, &cover);
        println!(
            "  bag {} covered by {:?} (connected: {connected})",
            h.render_vertex_set(bag),
            cover.iter().map(|&e| h.edge_name(e)).collect::<Vec<_>>()
        );
    }
    // D1/D3 of Example 3 compute T×R or S×U; ConCov bans them:
    let concov_bags = concov_filter(&h, 2, &bags);
    match candidate_td(&h, &concov_bags) {
        Some(td) => {
            println!("ConCov-shw-2 decomposition (no Cartesian products):");
            println!("{}", td.render(&h));
        }
        None => println!("no ConCov decomposition at width 2"),
    }

    // --- C5: constraints can increase the width -------------------------
    let c5 = named::cycle(5);
    let w2 = concov_filter(&c5, 2, &soft_bags(&c5, 2));
    let w3 = concov_filter(&c5, 3, &soft_bags(&c5, 3));
    println!(
        "C5: ConCov CTD at width 2 exists: {}, at width 3: {} \
         (paper: ConCov-shw(C5) = 3 although shw(C5) = 2)",
        candidate_td(&c5, &w2).is_some(),
        candidate_td(&c5, &w3).is_some(),
    );

    // --- Example 4: partition clustering --------------------------------
    let (hq, labels) = named::example4_query();
    let bags = soft_bags(&hq, 2);
    let eval = PartClust {
        k: 2,
        labels,
        num_partitions: 2,
    };
    let (td, summary) = best(&hq, &bags, &eval).expect("Figure 4c exists");
    println!("PartClust decomposition of Example 4 (partitions form disjoint subtrees):");
    println!("{}", td.render(&hq));
    println!("feasible root partitions: {:?}", summary.options);

    // --- ShallowCyc: bound the depth of the cyclic core -----------------
    let eval = ShallowCyc { d: 0 };
    match best(&hq, &bags, &eval) {
        Some((td, depth)) => {
            println!("ShallowCyc_0 decomposition (cyclic core at the root only):");
            println!("{}", td.render(&hq));
            println!("deepest multi-edge node depth: {depth}");
        }
        None => println!("no ShallowCyc_0 decomposition at width 2"),
    }
    let _ = best(&hq, &bags, &Trivial);
}
