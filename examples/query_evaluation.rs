//! End-to-end structure-guided query evaluation (Section 7 pipeline):
//! parse one of the paper's benchmark SQL queries, extract its
//! hypergraph, enumerate ConCov soft hypertree decompositions ranked by
//! the actual-cardinality cost function, execute the best one via
//! Yannakakis, and compare against a standard binary-join baseline.
//!
//! ```sh
//! cargo run --release --example query_evaluation
//! ```

use softhw::core::constraints::concov_exact_filter;
use softhw::core::ctd_opt::top_n;
use softhw::core::soft::cover_bags;
use softhw::query::{atom_relations, bind, build_plan, execute, parse_sql};
use softhw::query::{CostContext, TrueCardCost};
use softhw::workloads::hetionet::{self, HetionetScale};
use softhw::workloads::queries::Q_HTO3;
use std::time::Instant;

fn main() {
    // A Hetionet-like graph: power-law digraphs per edge-type relation.
    let db = hetionet::generate(
        &HetionetScale {
            nodes: 800,
            edges_per_relation: 4_000,
        },
        42,
    );
    println!("query:\n{Q_HTO3}\n");
    let cq = bind(&parse_sql(Q_HTO3).expect("fixed SQL"), &db).expect("schema matches");
    let h = cq.hypergraph();
    println!(
        "query hypergraph ({} atoms, {} variables):",
        h.num_edges(),
        h.num_vertices()
    );
    println!("{h:?}");

    // Candidate bags + ConCov constraint, ranked by true-cardinality cost.
    let bags = concov_exact_filter(&h, 2, &cover_bags(&h, 2, true));
    let atoms = atom_relations(&cq, &db);
    let cx = CostContext::new(&cq, &h, &atoms, &db);
    let eval = TrueCardCost { cx: &cx };
    let ranked = top_n(&h, &bags, &eval, 3);
    println!("\ntop-3 ConCov decompositions by actual-cardinality cost:");
    for (i, (td, s)) in ranked.iter().enumerate() {
        println!("#{i} (cost {:.0}):\n{}", s.cost, td.render(&h));
    }

    // Execute the best decomposition.
    let (best_td, _) = &ranked[0];
    let plan = build_plan(&cq, &h, best_td).expect("plannable");
    println!(
        "SQL rewriting of the best decomposition:\n{}",
        softhw::query::rewrite::render_sql(&cq, &plan)
    );
    let start = Instant::now();
    let res = execute(&cq, &atoms, &plan);
    let decomp_time = start.elapsed();
    println!(
        "decomposition-guided: MIN = {:?} in {:?} ({} tuples materialised)",
        res.value, decomp_time, res.stats.tuples_materialised
    );

    // Baseline: greedy binary-join execution.
    let start = Instant::now();
    let base =
        softhw::engine::baseline::run_baseline(&atoms, &[cq.agg_var], u64::MAX).expect("no cap");
    let base_time = start.elapsed();
    println!(
        "baseline greedy joins:  MIN = {:?} in {:?} ({} tuples materialised)",
        base.answer.min_of(cq.agg_var),
        base_time,
        base.stats.tuples_materialised
    );
    assert_eq!(res.value, base.answer.min_of(cq.agg_var), "answers agree");
}
