//! The Institutional Robber & Marshals Game of Appendix A.1: on `H2`,
//! two marshals win the plain game but need three for a *monotone*
//! strategy (matching `hw(H2) = 3`), while the institutional variant is
//! monotonically winnable with two (matching `shw(H2) = 2`) — the
//! administrators let each marshal guard only the designated part of an
//! edge.
//!
//! ```sh
//! cargo run --release --example robber_marshals
//! ```

use softhw::core::games::{
    has_winning_strategy, irm_width, marshal_width, mon_irm_width, mon_marshal_width, GameVariant,
};
use softhw::core::{hw, shw};
use softhw::hypergraph::named;

fn main() {
    let h2 = named::h2();
    println!("H2 (Figure 1a / Figure 7a):");
    println!(
        "  marshal width            mw(H2)      = {}",
        marshal_width(&h2)
    );
    println!(
        "  monotone marshal width   mon-mw(H2)  = {}",
        mon_marshal_width(&h2)
    );
    println!(
        "  institutional width      irmw(H2)    = {}",
        irm_width(&h2)
    );
    println!(
        "  monotone institutional   mon-irmw(H2)= {}",
        mon_irm_width(&h2)
    );
    let (hw_v, _) = hw::hw(&h2);
    let (shw_v, _) = shw::shw(&h2);
    println!("  vs. hw(H2) = {hw_v}, shw(H2) = {shw_v}");
    println!();
    println!("GLS: monotone marshals characterise hw; Theorem 12: mon-irmw <= shw.");
    assert_eq!(mon_marshal_width(&h2), hw_v);
    assert!(mon_irm_width(&h2) <= shw_v);

    // The non-monotonicity phenomenon of Figure 7: with 2 plain marshals
    // a winning strategy exists, but no *monotone* one.
    assert!(has_winning_strategy(
        &h2,
        2,
        GameVariant::RobberMarshals,
        false
    ));
    assert!(!has_winning_strategy(
        &h2,
        2,
        GameVariant::RobberMarshals,
        true
    ));
    assert!(has_winning_strategy(
        &h2,
        2,
        GameVariant::Institutional,
        true
    ));
    println!("2 plain marshals win H2 only non-monotonically;");
    println!("2 institutional marshals win monotonically (Figure 7b's game tree).");

    // Sanity across small cycles: all four widths agree at 2.
    for n in [4, 5, 6] {
        let c = named::cycle(n);
        println!(
            "C{n}: mw = {}, mon-mw = {}, irmw = {}, mon-irmw = {}",
            marshal_width(&c),
            mon_marshal_width(&c),
            irm_width(&c),
            mon_irm_width(&c)
        );
    }
}
