//! Quickstart: compute the soft hypertree width of a cyclic query's
//! hypergraph, inspect the decomposition, and compare against classical
//! hypertree width.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use softhw::core::{hw, shw};
use softhw::hypergraph::HypergraphBuilder;

fn main() {
    // The 4-cycle query of the paper's Example 3:
    //   q = R(w,x) ∧ S(x,y) ∧ T(y,z) ∧ U(z,w)
    let mut b = HypergraphBuilder::new();
    b.edge("R", &["w", "x"]);
    b.edge("S", &["x", "y"]);
    b.edge("T", &["y", "z"]);
    b.edge("U", &["z", "w"]);
    let h = b.build();

    let (soft_width, td) = shw::shw(&h);
    println!("query hypergraph: {h:?}");
    println!("shw = {soft_width}, witness soft hypertree decomposition:");
    println!("{}", td.render(&h));
    td.validate(&h).expect("the witness is always valid");

    let (hw_width, hd) = hw::hw(&h);
    println!("hw = {hw_width}, witness hypertree decomposition:");
    println!("{}", hd.render(&h));
    assert!(soft_width <= hw_width, "Theorem 2: shw <= hw");

    // The headline example where the two measures differ: H2 (Example 1).
    let h2 = softhw::hypergraph::named::h2();
    let (s, _) = shw::shw(&h2);
    let (c, _) = hw::hw(&h2);
    println!("H2 (Figure 1a): shw = {s}, hw = {c}  (the paper's shw < hw witness)");
}
