//! Property-based tests of the reduction pipeline (proptest): solving
//! through `reduce` (subsumed-edge removal, degree-1 peeling, component
//! splitting) must agree with raw solving on the original hypergraph,
//! and every lifted witness must validate against the *raw* input. The
//! same file runs under `--features parallel`, certifying the pipeline
//! on both execution paths.

use proptest::prelude::*;
use softhw::core::{hw, shw};
use softhw::hypergraph::random::{random_hypergraph, RandomConfig};
use softhw::hypergraph::reduce::reduce;
use softhw::hypergraph::{Hypergraph, HypergraphBuilder};

fn small_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (4usize..8, 3usize..8, 0u64..5000).prop_map(|(nv, ne, seed)| {
        random_hypergraph(
            &RandomConfig {
                num_vertices: nv,
                num_edges: ne,
                min_arity: 2,
                max_arity: 3,
                connect: true,
            },
            seed,
        )
    })
}

/// Disjoint union of `a` and `b` with fresh vertex/edge names — the
/// component-splitting stimulus (random generation keeps its inputs
/// connected).
fn disjoint_union(a: &Hypergraph, b: &Hypergraph) -> Hypergraph {
    let mut bld = HypergraphBuilder::new();
    for (tag, h) in [("a", a), ("b", b)] {
        let ids: Vec<usize> = (0..h.num_vertices())
            .map(|v| bld.vertex(&format!("{tag}{v}")))
            .collect();
        for e in 0..h.num_edges() {
            let vs: Vec<usize> = h.edge(e).iter().map(|v| ids[v]).collect();
            bld.edge_ids(&format!("{tag}e{e}"), &vs);
        }
    }
    bld.build()
}

/// `h` plus a copy of each of its first two edges and a strict subset of
/// edge 0 — all subsumed, so every width is unchanged.
fn with_subsumed_edges(h: &Hypergraph) -> Hypergraph {
    let mut bld = HypergraphBuilder::new();
    for v in 0..h.num_vertices() {
        bld.vertex(h.vertex_name(v));
    }
    for e in 0..h.num_edges() {
        let vs: Vec<usize> = h.edge(e).iter().collect();
        bld.edge_ids(h.edge_name(e), &vs);
    }
    for e in 0..h.num_edges().min(2) {
        let vs: Vec<usize> = h.edge(e).iter().collect();
        bld.edge_ids(&format!("dup{e}"), &vs);
        if vs.len() > 1 {
            bld.edge_ids(&format!("sub{e}"), &vs[1..]);
        }
    }
    bld.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reduced_shw_matches_raw_sweep_oracle(h in small_hypergraph()) {
        // `shw::shw` solves through the reduction pipeline; the retained
        // rebuild-per-width sweep on the raw input is the oracle.
        let (raw_w, _) = shw::shw_rebuild(&h);
        let (red_w, td) = shw::shw(&h);
        prop_assert_eq!(red_w, raw_w, "reduce changed shw");
        // The lifted witness is a decomposition of the *raw* hypergraph.
        prop_assert_eq!(td.validate(&h), Ok(()));
    }

    #[test]
    fn reduced_hw_matches_raw_oracle(h in small_hypergraph()) {
        let (raw_w, _) = hw::hw_raw(&h);
        let (red_w, ghd) = hw::hw(&h);
        prop_assert_eq!(red_w, raw_w, "reduce changed hw");
        prop_assert!(ghd.is_hd(&h), "lifted hw witness is not an HD of the raw input");
    }

    #[test]
    fn subsumed_edges_never_change_widths(h in small_hypergraph()) {
        // Adding duplicate and subset edges leaves shw/hw unchanged; the
        // pipeline drops them, and the witness must still cover the
        // padded input (the oracle here is the solver on the unpadded
        // hypergraph).
        let padded = with_subsumed_edges(&h);
        let red = reduce(&padded);
        prop_assert!(red.stats.edges_dropped >= padded.num_edges() - h.num_edges(),
            "subsumption missed a duplicated/subset edge");
        let (w, td) = shw::shw(&padded);
        prop_assert_eq!(w, shw::shw(&h).0);
        prop_assert_eq!(td.validate(&padded), Ok(()));
        let (hw_w, ghd) = hw::hw(&padded);
        prop_assert_eq!(hw_w, hw::hw(&h).0);
        prop_assert!(ghd.is_hd(&padded));
    }

    #[test]
    fn disconnected_inputs_split_solve_and_lift(
        a in small_hypergraph(),
        b in small_hypergraph(),
    ) {
        // Component splitting: the union's width is the max over the
        // pieces (solved independently as their own oracles), and the
        // lifted witness spans the whole disconnected input.
        let u = disjoint_union(&a, &b);
        let red = reduce(&u);
        // Peeling can dissolve an acyclic half entirely, so the piece
        // *count* is not fixed — but no surviving piece may ever span
        // both halves (a-vertices precede b-vertices in the union's id
        // space).
        for piece in &red.pieces {
            let in_a = piece.vertex_map.iter().filter(|&&v| v < a.num_vertices()).count();
            prop_assert!(in_a == 0 || in_a == piece.vertex_map.len(),
                "a reduced piece spans both components");
        }
        let expect = shw::shw_rebuild(&a).0.max(shw::shw_rebuild(&b).0);
        let (w, td) = shw::shw(&u);
        prop_assert_eq!(w, expect);
        prop_assert_eq!(td.validate(&u), Ok(()));
        let expect_hw = hw::hw_raw(&a).0.max(hw::hw_raw(&b).0);
        let (hw_w, ghd) = hw::hw(&u);
        prop_assert_eq!(hw_w, expect_hw);
        prop_assert!(ghd.is_hd(&u));
    }

    #[test]
    fn reduction_bookkeeping_is_consistent(h in small_hypergraph()) {
        // Structural sanity of the trace itself: pieces account for
        // every surviving edge, and the maps point back into the raw
        // input's id spaces.
        let red = reduce(&h);
        let surviving: usize = red.pieces.iter().map(|p| p.h.num_edges()).sum();
        prop_assert!(surviving <= h.num_edges());
        for piece in &red.pieces {
            for &v in &piece.vertex_map {
                prop_assert!(v < h.num_vertices());
            }
            for &e in &piece.edge_map {
                prop_assert!(e < h.num_edges());
            }
        }
    }
}
