//! Property tests for the dependency-driven worklist satisfaction DP:
//! on random hypergraphs, the worklist engine must agree **block for
//! block** — bases and timestamps, not just accept/reject — with the
//! retained Jacobi reference, and the cross-query decomposition cache
//! must return exactly what cold runs return. The same file runs under
//! the `parallel` feature in CI, so serial/parallel bit-identity is
//! covered by the same assertions.

use proptest::prelude::*;
use softhw::core::cache::DecompCache;
use softhw::core::ctd::CtdInstance;
use softhw::core::soft::{soft_bags_with, SoftLimits};
use softhw::hypergraph::random::{random_hypergraph, RandomConfig};
use softhw::hypergraph::Hypergraph;

fn small_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (4usize..9, 3usize..9, 0u64..5000).prop_map(|(nv, ne, seed)| {
        random_hypergraph(
            &RandomConfig {
                num_vertices: nv,
                num_edges: ne,
                min_arity: 2,
                max_arity: 3,
                connect: true,
            },
            seed,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn worklist_satisfaction_equals_jacobi(h in small_hypergraph(), k in 1usize..3) {
        let limits = SoftLimits::default();
        let bags = soft_bags_with(&h, k, &limits).unwrap();
        let inst = CtdInstance::new(&h, &bags);
        let fast = inst.satisfy();
        let slow = inst.satisfy_jacobi();
        prop_assert_eq!(fast.accept, slow.accept);
        // Full table equality: same satisfied set, same bases, same
        // timestamps — the worklist's frontier waves must replay the
        // Jacobi rounds exactly.
        prop_assert_eq!(&fast.basis, &slow.basis);
        // And the certified decompositions validate.
        if let Some(td) = inst.extract(&fast) {
            prop_assert_eq!(td.validate(&h), Ok(()));
            prop_assert!(td.is_comp_nf(&h));
        }
    }

    #[test]
    fn viable_candidate_tables_match_reference_predicate(
        h in small_hypergraph(),
        k in 1usize..3,
    ) {
        // The precomputed (comp-group, closure-group) tables must induce
        // exactly the candidates the from-first-principles predicate
        // accepts under an all-satisfied state.
        let limits = SoftLimits::default();
        let bags = soft_bags_with(&h, k, &limits).unwrap();
        let inst = CtdInstance::new(&h, &bags);
        let all_true = vec![true; inst.blocks.len()];
        let mut buf = Vec::new();
        for b in 0..inst.blocks.len() {
            let viable: Vec<usize> = inst.viable_candidates(b).map(|(x, _)| x).collect();
            let direct: Vec<usize> = (0..inst.num_bags())
                .filter(|&x| inst.is_basis_with(b, x, &all_true, &mut buf))
                .collect();
            prop_assert_eq!(viable, direct, "block {}", b);
        }
    }

    #[test]
    fn cross_query_cache_equals_cold_runs(h in small_hypergraph(), k in 1usize..3) {
        let limits = SoftLimits::default();
        let bags = soft_bags_with(&h, k, &limits).unwrap();
        let cold = softhw::core::candidate_td(&h, &bags);
        let mut cache = DecompCache::new();
        let warm1 = cache.candidate_td(&h, &bags);
        let warm2 = cache.candidate_td(&h, &bags);
        match (&cold, &warm1, &warm2) {
            (Some(c), Some(w1), Some(w2)) => {
                prop_assert_eq!(c.bags(), w1.bags());
                prop_assert_eq!(w1.bags(), w2.bags());
            }
            (None, None, None) => {}
            _ => prop_assert!(false, "cold and cached runs disagree"),
        }
        prop_assert_eq!(cache.stats().instance_hits, 1);
        // Width sweeps through the cache agree with the cold solver.
        let (cold_w, _) = softhw::core::shw::shw(&h);
        let (warm_w, warm_td) = cache.shw(&h);
        prop_assert_eq!(cold_w, warm_w);
        prop_assert_eq!(warm_td.validate(&h), Ok(()));
    }
}
