//! Property tests for the dependency-driven worklist satisfaction DP
//! and the incremental sweep engine: on random hypergraphs, the worklist
//! engine must agree **block for block** — bases and timestamps, not
//! just accept/reject — with the retained Jacobi reference; the
//! incremental `k → k+1` instance extension must be bit-identical to a
//! cold build over the same bag sequence; the state-reusing incremental
//! satisfaction must reproduce the cold satisfied set while keeping
//! previously satisfied blocks' bases and timestamps verbatim; and the
//! cross-query decomposition cache must return exactly what cold runs
//! return. The same file runs under the `parallel` feature in CI (the
//! feature-matrix job), so serial/parallel bit-identity is covered by
//! the same assertions.

use proptest::prelude::*;
use softhw::core::cache::DecompCache;
use softhw::core::ctd::CtdInstance;
use softhw::core::soft::{soft_bag_ids, soft_bags_with, SoftLimits};
use softhw::core::sweep::IncrementalSweep;
use softhw::hypergraph::random::{random_hypergraph, RandomConfig};
use softhw::hypergraph::{BagId, BlockIndex, Hypergraph};

fn small_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (4usize..9, 3usize..9, 0u64..5000).prop_map(|(nv, ne, seed)| {
        random_hypergraph(
            &RandomConfig {
                num_vertices: nv,
                num_edges: ne,
                min_arity: 2,
                max_arity: 3,
                connect: true,
            },
            seed,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn worklist_satisfaction_equals_jacobi(h in small_hypergraph(), k in 1usize..3) {
        let limits = SoftLimits::default();
        let bags = soft_bags_with(&h, k, &limits).unwrap();
        let inst = CtdInstance::new(&h, &bags);
        let fast = inst.satisfy();
        let slow = inst.satisfy_jacobi();
        prop_assert_eq!(fast.accept, slow.accept);
        // Full table equality: same satisfied set, same bases, same
        // timestamps — the worklist's frontier waves must replay the
        // Jacobi rounds exactly.
        prop_assert_eq!(&fast.basis, &slow.basis);
        // And the certified decompositions validate.
        if let Some(td) = inst.extract(&fast) {
            prop_assert_eq!(td.validate(&h), Ok(()));
            prop_assert!(td.is_comp_nf(&h));
        }
    }

    #[test]
    fn viable_candidate_tables_match_reference_predicate(
        h in small_hypergraph(),
        k in 1usize..3,
    ) {
        // The precomputed (comp-group, closure-group) tables must induce
        // exactly the candidates the from-first-principles predicate
        // accepts under an all-satisfied state.
        let limits = SoftLimits::default();
        let bags = soft_bags_with(&h, k, &limits).unwrap();
        let inst = CtdInstance::new(&h, &bags);
        let all_true = vec![true; inst.blocks.len()];
        let mut buf = Vec::new();
        for b in 0..inst.blocks.len() {
            let viable: Vec<usize> = inst.viable_candidates(b).map(|(x, _)| x).collect();
            let direct: Vec<usize> = (0..inst.num_bags())
                .filter(|&x| inst.is_basis_with(b, x, &all_true, &mut buf))
                .collect();
            prop_assert_eq!(viable, direct, "block {}", b);
        }
    }

    #[test]
    fn incremental_extension_bit_identical_to_cold_build(h in small_hypergraph()) {
        // Grow one instance through the width strata k = 1, 2, 3 and, at
        // every step, compare against a cold build over the same bag
        // sequence: the satisfaction tables — bases AND timestamps —
        // must be bit-identical, and the viable-candidate tables must
        // match entry for entry. Under `--features parallel` the same
        // assertions certify serial/parallel identity of the extension
        // path.
        let limits = SoftLimits::default();
        let mut index = BlockIndex::new(&h);
        let mut inst = CtdInstance::empty(&mut index);
        let mut sat = inst.satisfy();
        let mut stratified: Vec<BagId> = Vec::new();
        let mut seen = softhw::hypergraph::FxHashSet::default();
        for k in 1..=3usize {
            let ids = soft_bag_ids(&mut index, k, &limits).unwrap();
            let delta = inst.extend(&mut index, &ids);
            for &id in &ids {
                if seen.insert(id) {
                    stratified.push(id);
                }
            }
            let cold = CtdInstance::build(&mut index, &stratified);
            let cold_sat = cold.satisfy();
            let fresh_sat = inst.satisfy();
            prop_assert_eq!(fresh_sat.accept, cold_sat.accept, "k = {}", k);
            prop_assert_eq!(&fresh_sat.basis, &cold_sat.basis, "k = {}", k);
            prop_assert_eq!(inst.num_bags(), cold.num_bags());
            prop_assert_eq!(inst.blocks.len(), cold.blocks.len());
            for b in 0..cold.blocks.len() {
                let ext: Vec<(usize, Vec<u32>)> = inst
                    .viable_candidates(b)
                    .map(|(x, kids)| (x, kids.to_vec()))
                    .collect();
                let cld: Vec<(usize, Vec<u32>)> = cold
                    .viable_candidates(b)
                    .map(|(x, kids)| (x, kids.to_vec()))
                    .collect();
                prop_assert_eq!(&ext, &cld, "viable candidates of block {} at k = {}", b, k);
            }
            // The state-reusing DP: same satisfied set and accept as a
            // fresh run on the extended instance; previously satisfied
            // blocks keep bases and timestamps verbatim.
            let inc_sat = inst.satisfy_extend(&sat, &delta);
            prop_assert_eq!(inc_sat.accept, fresh_sat.accept);
            let inc_set: Vec<bool> = inc_sat.basis.iter().map(Option::is_some).collect();
            let fresh_set: Vec<bool> = fresh_sat.basis.iter().map(Option::is_some).collect();
            prop_assert_eq!(inc_set, fresh_set, "satisfied set at k = {}", k);
            for b in 0..delta.prev_blocks {
                if sat.basis[b].is_some() {
                    prop_assert_eq!(inc_sat.basis[b], sat.basis[b], "kept state of block {}", b);
                }
            }
            if let Some(td) = inst.extract(&inc_sat) {
                prop_assert_eq!(td.validate(&h), Ok(()));
                prop_assert!(td.is_comp_nf(&h));
            }
            sat = inc_sat;
        }
    }

    #[test]
    fn incremental_sweep_decisions_equal_cold_decisions(h in small_hypergraph()) {
        let limits = SoftLimits::default();
        let mut index = BlockIndex::new(&h);
        let mut sweep = IncrementalSweep::new();
        for k in 1..=3usize {
            let inc = sweep.decide_leq(&mut index, k, &limits).unwrap();
            let cold = softhw::core::shw::shw_leq_with(&h, k, &limits).unwrap();
            prop_assert_eq!(inc.is_some(), cold.is_some(), "k = {}", k);
            if let Some(td) = inc {
                prop_assert_eq!(td.validate(&h), Ok(()));
                prop_assert!(td.is_comp_nf(&h));
            }
        }
        // The public sweep entry points agree on the width.
        let (w_inc, td_inc) = softhw::core::shw::shw(&h);
        let (w_reb, _) = softhw::core::shw::shw_rebuild(&h);
        prop_assert_eq!(w_inc, w_reb);
        prop_assert_eq!(td_inc.validate(&h), Ok(()));
    }

    #[test]
    fn cross_query_cache_equals_cold_runs(h in small_hypergraph(), k in 1usize..3) {
        let limits = SoftLimits::default();
        let bags = soft_bags_with(&h, k, &limits).unwrap();
        let cold = softhw::core::candidate_td(&h, &bags);
        let mut cache = DecompCache::new();
        let warm1 = cache.candidate_td(&h, &bags);
        let warm2 = cache.candidate_td(&h, &bags);
        match (&cold, &warm1, &warm2) {
            (Some(c), Some(w1), Some(w2)) => {
                prop_assert_eq!(c.bags(), w1.bags());
                prop_assert_eq!(w1.bags(), w2.bags());
            }
            (None, None, None) => {}
            _ => prop_assert!(false, "cold and cached runs disagree"),
        }
        prop_assert_eq!(cache.stats().instance_hits, 1);
        // Width sweeps through the cache agree with the cold solver.
        let (cold_w, _) = softhw::core::shw::shw(&h);
        let (warm_w, warm_td) = cache.shw(&h);
        prop_assert_eq!(cold_w, warm_w);
        prop_assert_eq!(warm_td.validate(&h), Ok(()));
    }
}
