//! Edge-case integration tests across the framework: degenerate inputs,
//! limit handling, evaluator/enumeration corner cases, and cross-module
//! consistency checks that don't fit a single crate's unit tests.

use softhw::core::constraints::{BagCost, ConCov, JoinCost, Lexi, ShallowCyc, Trivial};
use softhw::core::ctd_opt::{
    best, enumerate_all, evaluate_td, sample_random, top_n, EnumerateOptions,
};
use softhw::core::soft::{soft_bags, soft_bags_with, SoftLimits};
use softhw::core::td::TreeDecomposition;
use softhw::core::{candidate_td, cover, hw, shw};
use softhw::hypergraph::{named, BitSet, HypergraphBuilder};

#[test]
fn single_edge_hypergraph_everything_is_one() {
    let mut b = HypergraphBuilder::new();
    b.edge("e", &["x", "y", "z"]);
    let h = b.build();
    assert_eq!(shw::shw(&h).0, 1);
    assert_eq!(hw::hw(&h).0, 1);
    let bags = soft_bags(&h, 1);
    assert!(bags.contains(&h.all_vertices()));
    let td = candidate_td(&h, &bags).expect("trivial");
    assert_eq!(td.num_nodes(), 1);
}

#[test]
fn parallel_edges_are_handled() {
    // Two identical edges: dedup at the Soft level, width 1.
    let mut b = HypergraphBuilder::new();
    b.edge("e1", &["x", "y"]);
    b.edge("e2", &["x", "y"]);
    let h = b.build();
    assert_eq!(shw::shw(&h).0, 1);
    assert_eq!(hw::hw(&h).0, 1);
}

#[test]
fn limits_propagate_as_errors_not_panics() {
    let h = named::h2();
    let tiny = SoftLimits {
        max_lambda_sets: 2,
        max_bags: 2,
    };
    assert!(soft_bags_with(&h, 2, &tiny).is_err());
    assert!(shw::shw_leq_with(&h, 2, &tiny).is_err());
}

#[test]
fn evaluate_td_rejects_constraint_violations() {
    // A decomposition with a non-single-edge bag violates ShallowCyc{d:-1}.
    let h = named::four_cycle_query();
    let (_, td) = shw::shw(&h);
    assert!(evaluate_td(&h, &td, &ShallowCyc { d: -1 }).is_none());
    assert!(evaluate_td(&h, &td, &ShallowCyc { d: 5 }).is_some());
}

#[test]
fn enumerate_respects_small_caps() {
    let h = named::cycle(6);
    let bags = soft_bags(&h, 2);
    let opts = EnumerateOptions { cap_per_block: 3 };
    let some = enumerate_all(&h, &bags, &Trivial, &opts);
    assert!(!some.is_empty());
    assert!(some.len() <= 3);
    for (td, ()) in &some {
        assert_eq!(td.validate(&h), Ok(()));
    }
}

#[test]
fn top_n_prefix_is_stable_under_larger_n() {
    // The k-best list must be a prefix of the (k+m)-best list w.r.t. cost.
    let h = named::cycle(5);
    let bags = soft_bags(&h, 2);
    let cost = BagCost::new(|b: &BitSet| (b.len() * b.len()) as f64);
    let t3 = top_n(&h, &bags, &cost, 3);
    let t8 = top_n(&h, &bags, &cost, 8);
    assert!(t3.len() <= t8.len());
    for i in 0..t3.len() {
        assert!((t3[i].1.cost - t8[i].1.cost).abs() < 1e-9);
    }
}

#[test]
fn join_cost_evaluator_prices_edges() {
    // With free nodes and unit edge costs, the best decomposition
    // minimises the number of tree edges = nodes - 1.
    let h = named::cycle(6);
    let bags = soft_bags(&h, 2);
    let eval = JoinCost::new(|_: &BitSet| 0.0, |_: &BitSet, _: &BitSet| 1.0);
    let (td, summary) = best(&h, &bags, &eval).expect("C6 decomposes");
    assert!((summary.cost - (td.num_nodes() as f64 - 1.0)).abs() < 1e-9);
    let all = enumerate_all(&h, &bags, &eval, &EnumerateOptions::default());
    for (other, s) in &all {
        assert!(s.cost + 1e-9 >= summary.cost);
        assert_eq!(other.validate(&h), Ok(()));
    }
}

#[test]
fn lexi_constraint_first_cost_second() {
    let h = named::cycle(5);
    let bags = soft_bags(&h, 3);
    let eval = Lexi::new(ConCov { k: 3 }, BagCost::new(|b: &BitSet| b.len() as f64));
    let (td, ((), cost)) = best(&h, &bags, &eval).expect("ConCov at width 3");
    assert!(cost.cost > 0.0);
    for bag in td.bags() {
        assert!(cover::find_connected_cover(&h, bag, 3).is_some());
    }
}

#[test]
fn sampling_covers_multiple_decompositions() {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let h = named::cycle(6);
    let bags = soft_bags(&h, 2);
    let mut rng = SmallRng::seed_from_u64(3);
    let mut shapes = std::collections::BTreeSet::new();
    for _ in 0..30 {
        let td = sample_random(&h, &bags, &mut rng).expect("satisfiable");
        let mut bag_list: Vec<Vec<usize>> = td.bags().iter().map(|b| b.to_vec()).collect();
        bag_list.sort();
        shapes.insert(bag_list);
    }
    assert!(
        shapes.len() >= 3,
        "random sampling should reach several distinct decompositions, got {}",
        shapes.len()
    );
}

#[test]
fn comp_nf_check_distinguishes() {
    // A path decomposition of C4 in "wrong" shape: duplicate bags chained
    // arbitrarily can break CompNF while staying a valid TD.
    let h = named::cycle(4);
    let mut td = TreeDecomposition::new(h.vset(&["v0", "v1", "v2"]));
    let mid = td.add_child(td.root(), h.vset(&["v0", "v2"]));
    td.add_child(mid, h.vset(&["v0", "v2", "v3"]));
    assert_eq!(td.validate(&h), Ok(()));
    assert!(td.is_comp_nf(&h));
    // Duplicating the root bag as a leaf: still valid, still CompNF? A
    // duplicate bag child has B(T_c) = B(u) ∩ B(c) ∪ ∅ — no component
    // matches, so CompNF must fail.
    let mut td2 = td.clone();
    td2.add_child(td2.root(), h.vset(&["v0", "v1", "v2"]));
    assert_eq!(td2.validate(&h), Ok(()));
    assert!(!td2.is_comp_nf(&h));
}

#[test]
fn ghw_leq_shw_leq_hw_chain_on_named_instances() {
    use softhw::core::soft_iter::ghw;
    for h in [
        named::cycle(4),
        named::cycle(7),
        named::four_cycle_query(),
        named::triangle_star(2),
    ] {
        let g = ghw(&h, &SoftLimits::default()).expect("small instance");
        let (s, _) = shw::shw(&h);
        let (c, _) = hw::hw(&h);
        assert!(g <= s && s <= c, "chain violated: {g} {s} {c}");
        assert!(c <= 3 * g + 1, "paper Section 8 bound");
    }
}

#[test]
fn sql_rewrite_renders_for_every_paper_query() {
    use softhw::query::{bind, build_plan, parse_sql, rewrite};
    for (name, sql, _) in softhw::workloads::queries::all_queries() {
        let db = softhw::workloads::schema_for(name);
        let cq = bind(&parse_sql(sql).expect("fixed"), &db).expect("binds");
        let h = cq.hypergraph();
        let (_, td) = shw::shw(&h);
        let plan = build_plan(&cq, &h, &td).expect("plannable");
        let script = rewrite::render_sql(&cq, &plan);
        assert!(script.contains("CREATE VIEW bag_0"));
        assert!(script.matches("CREATE VIEW").count() == plan.nodes.len());
    }
}
