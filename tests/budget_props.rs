//! Property tests for cooperative budget cancellation: aborting a
//! solve mid-flight and retrying must be **bit-identical** to a run
//! that was never interrupted — same bases, same timestamps, same
//! decompositions. The abort points are driven deterministically by
//! work caps (a tripped work cap reports [`DeadlineExceeded`] at an
//! input-determined tick, unlike a wall-clock deadline), and by the
//! shared cancel flag. The same file runs under the `parallel` feature
//! in CI, so the sharded enumeration and fan-out paths honour the same
//! contract.

use proptest::prelude::*;
use softhw::core::cache::DecompCache;
use softhw::core::error::DecompError;
use softhw::core::soft::SoftLimits;
use softhw::core::sweep::IncrementalSweep;
use softhw::core::Budget;
use softhw::hypergraph::random::{random_hypergraph, RandomConfig};
use softhw::hypergraph::{BlockIndex, Hypergraph};

fn small_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (4usize..9, 3usize..9, 0u64..5000).prop_map(|(nv, ne, seed)| {
        random_hypergraph(
            &RandomConfig {
                num_vertices: nv,
                num_edges: ne,
                min_arity: 2,
                max_arity: 3,
                connect: true,
            },
            seed,
        )
    })
}

/// The control run: a never-budgeted sweep through widths `1..=3`,
/// returning per-width decisions plus the final satisfaction table
/// (bases and timestamps) of the grown instance.
#[allow(clippy::type_complexity)]
fn control_sweep(h: &Hypergraph) -> (Vec<bool>, Option<Vec<Option<(usize, u32)>>>) {
    let limits = SoftLimits::default();
    let mut index = BlockIndex::new(h);
    let mut sweep = IncrementalSweep::new();
    let mut decisions = Vec::new();
    for k in 1..=3usize {
        let td = sweep.decide_leq(&mut index, k, &limits).unwrap();
        decisions.push(td.is_some());
    }
    (decisions, sweep.satisfaction().map(|s| s.basis.clone()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn work_cap_abort_then_retry_is_bit_identical(
        h in small_hypergraph(),
        cap_seq in proptest::collection::vec(1u64..2000, 1..6),
    ) {
        // Drive the sweep into work-cap trips at a range of depths
        // (the caps spread the abort points across candidate
        // generation, extension, and the DP), retrying after each trip.
        // Two guarantees are asserted:
        //  - the *answers* equal the never-interrupted control's;
        //  - the final grown state — bases AND timestamps — is
        //    bit-identical to a sweep that never tripped and simply
        //    started at the width where the last reset re-seeded
        //    (the reset contract: a trip leaves nothing behind, so the
        //    retry evolves exactly like that cold-started sweep).
        let (control_decisions, _) = control_sweep(&h);
        let limits = SoftLimits::default();
        let mut index = BlockIndex::new(&h);
        let mut sweep = IncrementalSweep::new();
        let mut trips = 0usize;
        let mut last_reset_k = None;
        let mut decisions = Vec::new();
        for k in 1..=3usize {
            let mut caps = cap_seq.iter();
            let td = loop {
                let budget = match caps.next() {
                    Some(&cap) => Budget::with_work_cap(cap),
                    None => Budget::unlimited(),
                };
                match sweep.decide_leq_budgeted(&mut index, k, &limits, &budget) {
                    Ok(td) => break td,
                    Err(e) if e.is_budget() => {
                        trips += 1;
                        last_reset_k = Some(k);
                        // The reset contract: the tripped sweep must be
                        // immediately reusable, starting cold.
                        prop_assert_eq!(sweep.max_width(), 0, "k = {}", k);
                        continue;
                    }
                    Err(e) => prop_assert!(false, "unexpected {}", e),
                }
            };
            if let Some(td) = &td {
                prop_assert_eq!(td.validate(&h), Ok(()));
            }
            decisions.push(td.is_some());
        }
        prop_assert_eq!(&decisions, &control_decisions, "answers diverged after {} trips", trips);
        let mut replay_index = BlockIndex::new(&h);
        let mut replay = IncrementalSweep::new();
        for k in last_reset_k.unwrap_or(1)..=3usize {
            replay.decide_leq(&mut replay_index, k, &limits).unwrap();
        }
        prop_assert_eq!(
            sweep.satisfaction().map(|s| s.basis.clone()),
            replay.satisfaction().map(|s| s.basis.clone()),
            "bases/timestamps diverged after {} trips",
            trips
        );
    }

    #[test]
    fn generous_cap_never_trips_and_matches_unlimited(h in small_hypergraph()) {
        // A cap the workload cannot exhaust must behave exactly like
        // Budget::unlimited(): same decisions, same tables, no error.
        let (control_decisions, control_basis) = control_sweep(&h);
        let limits = SoftLimits::default();
        let mut index = BlockIndex::new(&h);
        let mut sweep = IncrementalSweep::new();
        let budget = Budget::with_work_cap(u64::MAX / 2);
        let mut decisions = Vec::new();
        for k in 1..=3usize {
            let td = sweep.decide_leq_budgeted(&mut index, k, &limits, &budget).unwrap();
            decisions.push(td.is_some());
        }
        prop_assert_eq!(&decisions, &control_decisions);
        prop_assert_eq!(sweep.satisfaction().map(|s| s.basis.clone()), control_basis);
    }

    #[test]
    fn pre_canceled_budget_aborts_and_leaves_sweep_reusable(h in small_hypergraph()) {
        let limits = SoftLimits::default();
        let mut index = BlockIndex::new(&h);
        let mut sweep = IncrementalSweep::new();
        let budget = Budget::cancellable();
        budget.cancel();
        match sweep.decide_leq_budgeted(&mut index, 1, &limits, &budget) {
            Err(DecompError::Canceled) => {}
            other => prop_assert!(false, "expected Canceled, got {:?}", other),
        }
        // Cancellation is sticky on the budget, not on the sweep: a
        // fresh budget on the same sweep decides normally and matches
        // the control bit for bit.
        let (control_decisions, control_basis) = control_sweep(&h);
        let mut decisions = Vec::new();
        for k in 1..=3usize {
            let td = sweep.decide_leq(&mut index, k, &limits).unwrap();
            decisions.push(td.is_some());
        }
        prop_assert_eq!(&decisions, &control_decisions);
        prop_assert_eq!(sweep.satisfaction().map(|s| s.basis.clone()), control_basis);
    }

    #[test]
    fn cache_warm_state_survives_budget_trips(
        h in small_hypergraph(),
        cap in 1u64..500,
    ) {
        // A budget trip against the cache must not evict warm state or
        // memoise a partial answer: after the trip, an unlimited retry
        // returns exactly what a never-tripped cache returns.
        let limits = SoftLimits::default();
        let mut cold = DecompCache::new();
        let cold_answer = cold.try_shw(&h).unwrap();
        let mut cache = DecompCache::new();
        let tripped = matches!(
            cache.try_shw_budgeted(&h, &limits, &Budget::with_work_cap(cap)),
            Err(ref e) if e.is_budget()
        );
        let retried = cache.try_shw_budgeted(&h, &limits, &Budget::unlimited()).unwrap();
        prop_assert_eq!(retried.0, cold_answer.0, "width after trip={}", tripped);
        prop_assert_eq!(retried.1.bags(), cold_answer.1.bags());
        // And the budgeted decision path agrees with the plain one.
        let plain = cache.shw_leq(&h, retried.0, &limits).unwrap().is_some();
        prop_assert!(plain, "cache must decide its own width positively");
    }
}
