//! Property-based tests of the framework's core invariants (proptest):
//! the width hierarchy, Soft monotonicity, CTD validity, cover
//! soundness, and game/width consistency on random hypergraphs.

use proptest::prelude::*;
use softhw::core::soft::{soft_bags, SoftLimits};
use softhw::core::soft_iter::SoftHierarchy;
use softhw::core::{candidate_td, cover, hw, shw};
use softhw::hypergraph::random::{random_hypergraph, RandomConfig};
use softhw::hypergraph::{BitSet, Hypergraph};

fn small_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (4usize..8, 3usize..8, 0u64..5000).prop_map(|(nv, ne, seed)| {
        random_hypergraph(
            &RandomConfig {
                num_vertices: nv,
                num_edges: ne,
                min_arity: 2,
                max_arity: 3,
                connect: true,
            },
            seed,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn theorem2_shw_between_ghw_bound_and_hw(h in small_hypergraph()) {
        let (hw_v, hd) = hw::hw(&h);
        let (shw_v, td) = shw::shw(&h);
        // shw <= hw (Theorem 2)
        prop_assert!(shw_v <= hw_v);
        // witnesses are valid
        prop_assert!(hd.is_hd(&h));
        prop_assert_eq!(td.validate(&h), Ok(()));
        // every soft bag has a cover with <= shw edges (ghw <= shw half)
        for bag in td.bags() {
            prop_assert!(cover::find_cover(&h, bag, shw_v).is_some());
        }
    }

    #[test]
    fn soft_hierarchy_monotone(h in small_hypergraph()) {
        let mut hier = SoftHierarchy::new(&h, 2, SoftLimits::default());
        let e0 = hier.subedge_level(0).unwrap().to_vec();
        let e1 = hier.subedge_level(1).unwrap().to_vec();
        let s0 = hier.soft_level(0).unwrap().to_vec();
        let s1 = hier.soft_level(1).unwrap().to_vec();
        for e in &e0 { prop_assert!(e1.contains(e), "E0 ⊆ E1"); }
        for e in &e1 { prop_assert!(s1.contains(e), "E1 ⊆ Soft1"); }
        for b in &s0 { prop_assert!(s1.contains(b), "Soft0 ⊆ Soft1"); }
    }

    #[test]
    fn candidate_td_bags_come_from_candidates(h in small_hypergraph()) {
        let bags = soft_bags(&h, 2);
        if let Some(td) = candidate_td(&h, &bags) {
            prop_assert_eq!(td.validate(&h), Ok(()));
            prop_assert!(td.is_comp_nf(&h), "Algorithm 1 produces CompNF TDs");
            for bag in td.bags() {
                prop_assert!(bags.contains(bag));
            }
        }
    }

    #[test]
    fn covers_cover(h in small_hypergraph()) {
        // find_cover results actually cover their bags; connected covers
        // are connected.
        let bags = soft_bags(&h, 2);
        for bag in bags.iter().take(12) {
            if let Some(c) = cover::find_cover(&h, bag, 3) {
                let u = h.union_of_edges(c.iter().copied());
                prop_assert!(bag.is_subset(&u));
            }
            if let Some(cc) = cover::find_connected_cover(&h, bag, 3) {
                let u = h.union_of_edges(cc.iter().copied());
                prop_assert!(bag.is_subset(&u));
                prop_assert!(cover::edges_connected(&h, &cc));
            }
        }
    }

    #[test]
    fn components_partition_vertices(h in small_hypergraph(), seed in 0u64..100) {
        // vertex components w.r.t. a random separator partition V \ S
        let mut sep = BitSet::empty(h.num_vertices());
        let mut x = seed;
        for v in 0..h.num_vertices() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if x % 3 == 0 { sep.insert(v); }
        }
        let comps = h.vertex_components(&sep);
        let mut seen = sep.clone();
        for c in &comps {
            prop_assert!(!c.intersects(&seen), "components are disjoint from sep and each other");
            seen.union_with(c);
        }
        prop_assert_eq!(seen, h.all_vertices());
    }

    #[test]
    fn hw_equals_monotone_marshal_width(h in small_hypergraph()) {
        // GLS characterisation on random instances (the games module and
        // the hw solver are independent implementations).
        prop_assume!(h.num_edges() <= 6);
        let (hw_v, _) = hw::hw(&h);
        prop_assert_eq!(softhw::core::games::mon_marshal_width(&h), hw_v);
    }

    #[test]
    fn mon_irmw_at_most_shw(h in small_hypergraph()) {
        // Theorem 12.
        prop_assume!(h.num_edges() <= 6);
        let (shw_v, _) = shw::shw(&h);
        prop_assert!(softhw::core::games::mon_irm_width_tree(&h) <= shw_v);
    }

    #[test]
    fn relation_join_is_commutative_on_len(
        rows_a in proptest::collection::vec((0u64..8, 0u64..8), 0..40),
        rows_b in proptest::collection::vec((0u64..8, 0u64..8), 0..40),
    ) {
        use softhw::engine::Relation;
        let a = Relation::from_rows(vec![0, 1], rows_a.iter().map(|&(x, y)| vec![x, y]));
        let b = Relation::from_rows(vec![1, 2], rows_b.iter().map(|&(x, y)| vec![x, y]));
        prop_assert_eq!(a.natural_join(&b).len(), b.natural_join(&a).len());
        // semijoin is a filter: |a ⋉ b| <= |a|, and idempotent
        let sj = a.semijoin(&b);
        prop_assert!(sj.len() <= a.len());
        prop_assert_eq!(sj.semijoin(&b).len(), sj.len());
    }
}
