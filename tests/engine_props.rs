//! Property-based tests for the engine and frontend substrates: the
//! Yannakakis counting DP against materialised joins on random join
//! trees, full-reducer idempotence, and parser robustness.

use proptest::prelude::*;
use softhw::engine::relation::{Relation, VarId};
use softhw::engine::yannakakis::{EvalStats, JoinTree};

/// A random chain join tree R0(v0,v1) - R1(v1,v2) - ... with random
/// contents over a small domain.
fn chain_tree(rows: &[Vec<(u64, u64)>]) -> JoinTree {
    let mk = |i: usize, data: &[(u64, u64)]| {
        Relation::from_rows(
            vec![i as VarId, (i + 1) as VarId],
            data.iter().map(|&(a, b)| vec![a, b]),
        )
    };
    let mut t = JoinTree::leaf(mk(0, &rows[0]));
    let mut prev = 0;
    for (i, data) in rows.iter().enumerate().skip(1) {
        prev = t.add_child(prev, mk(i, data));
    }
    t
}

/// A star join tree: R0(v0,v1) with children R_i(v1, v_{i+1}).
fn star_tree(rows: &[Vec<(u64, u64)>]) -> JoinTree {
    let mut t = JoinTree::leaf(Relation::from_rows(
        vec![0, 1],
        rows[0].iter().map(|&(a, b)| vec![a, b]),
    ));
    for (i, data) in rows.iter().enumerate().skip(1) {
        t.add_child(
            0,
            Relation::from_rows(
                vec![1, (i + 1) as VarId],
                data.iter().map(|&(a, b)| vec![a, b]),
            ),
        );
    }
    t
}

fn rel_rows() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..5, 0u64..5), 0..25)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn count_dp_matches_materialised_join_chain(
        rows in proptest::collection::vec(rel_rows(), 2..5)
    ) {
        let t = chain_tree(&rows);
        let vars: Vec<VarId> = (0..=rows.len() as VarId).collect();
        let mut stats = EvalStats::default();
        // join_all deduplicates; compare against the DP on distinct inputs.
        let mut td = t.clone();
        for r in td.relations.iter_mut() {
            *r = r.distinct();
        }
        let count = td.count_join();
        let full = td.join_all(&vars, &mut stats);
        prop_assert_eq!(count, full.len() as u128);
    }

    #[test]
    fn count_dp_matches_materialised_join_star(
        rows in proptest::collection::vec(rel_rows(), 2..5)
    ) {
        let t = star_tree(&rows);
        let vars: Vec<VarId> = (0..=rows.len() as VarId).collect();
        let mut stats = EvalStats::default();
        let mut td = t.clone();
        for r in td.relations.iter_mut() {
            *r = r.distinct();
        }
        let count = td.count_join();
        let full = td.join_all(&vars, &mut stats);
        prop_assert_eq!(count, full.len() as u128);
    }

    #[test]
    fn full_reducer_is_idempotent_and_preserves_answers(
        rows in proptest::collection::vec(rel_rows(), 2..5)
    ) {
        let t = chain_tree(&rows);
        let mut once = t.clone();
        once.full_reduce(&mut EvalStats::default());
        let mut twice = once.clone();
        twice.full_reduce(&mut EvalStats::default());
        for (a, b) in once.relations.iter().zip(&twice.relations) {
            prop_assert_eq!(a.len(), b.len(), "second reduction must be a no-op");
        }
        // the reduction never changes the count
        prop_assert_eq!(t.count_join(), once.count_join());
        // and MIN over any variable agrees with the materialised join
        let vars: Vec<VarId> = (0..=rows.len() as VarId).collect();
        let full = t.join_all(&vars, &mut EvalStats::default());
        for &v in &vars {
            prop_assert_eq!(once.min_after_reduce(v), full.min_of(v));
        }
    }

    #[test]
    fn parser_never_panics(input in "[ -~]{0,60}") {
        // Arbitrary printable ASCII: the SQL and hypergraph parsers must
        // return errors, not panic.
        let _ = softhw::query::parse_sql(&input);
        let _ = softhw::hypergraph::parse_hypergraph(&input);
    }

    #[test]
    fn estimator_is_finite_and_nonnegative(
        rows_a in rel_rows(),
        rows_b in rel_rows(),
    ) {
        use softhw::engine::estimate::{estimated_join_card, estimated_query_cost};
        let a = Relation::from_rows(vec![0, 1], rows_a.iter().map(|&(x, y)| vec![x, y]));
        let b = Relation::from_rows(vec![1, 2], rows_b.iter().map(|&(x, y)| vec![x, y]));
        let card = estimated_join_card(&[&a, &b]);
        prop_assert!(card.is_finite() && card >= 0.0);
        let cost = estimated_query_cost(&[&a, &b]);
        prop_assert!(cost.is_finite() && cost >= 0.0);
        // single-relation estimates are exact
        prop_assert_eq!(estimated_join_card(&[&a]), a.len() as f64);
    }
}
