//! Property-based tests for the bag arena and block index: interned-id
//! set algebra must agree with direct `BitSet` algebra, cached
//! blocks/components must equal freshly computed ones, and the arena
//! candidate generator must agree with the seed's reference generator on
//! random hypergraphs.

use proptest::prelude::*;
use softhw::core::soft::{self, reference, SoftLimits};
use softhw::hypergraph::arena::BagArena;
use softhw::hypergraph::random::{random_hypergraph, RandomConfig};
use softhw::hypergraph::{BitSet, BlockIndex, Hypergraph};

fn small_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (4usize..9, 3usize..9, 0u64..5000).prop_map(|(nv, ne, seed)| {
        random_hypergraph(
            &RandomConfig {
                num_vertices: nv,
                num_edges: ne,
                min_arity: 2,
                max_arity: 3,
                connect: true,
            },
            seed,
        )
    })
}

/// A pseudo-random vertex set over `universe`, derived from `seed`.
fn derive_set(universe: usize, seed: u64) -> BitSet {
    let mut s = BitSet::empty(universe);
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    for v in 0..universe {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if x >> 33 & 1 == 1 {
            s.insert(v);
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn interned_algebra_matches_bitset_algebra(universe in 1usize..200, seed in 0u64..10_000) {
        let a = derive_set(universe, seed);
        let b = derive_set(universe, seed.wrapping_add(77));
        let mut arena = BagArena::new(universe);
        let (ia, ib) = (arena.intern(&a), arena.intern(&b));
        prop_assert_eq!(arena.is_subset(ia, ib), a.is_subset(&b));
        prop_assert_eq!(arena.intersects(ia, ib), a.intersects(&b));
        prop_assert_eq!(arena.card(ia), a.len());
        prop_assert_eq!(arena.bag_is_empty(ia), a.is_empty());
        let iu = arena.union(ia, ib);
        prop_assert_eq!(arena.to_bitset(iu), a.union(&b));
        let ii = arena.intersection(ia, ib);
        prop_assert_eq!(arena.to_bitset(ii), a.intersection(&b));
        // Interning is idempotent and round-trips.
        prop_assert_eq!(arena.intern(&a), ia);
        prop_assert_eq!(arena.to_bitset(ia), a);
        // Id ordering follows content ordering.
        prop_assert_eq!(
            arena.cmp_bags(ia, ib),
            a.cmp(&b)
        );
    }

    #[test]
    fn cached_blocks_equal_fresh_ones(h in small_hypergraph(), seed in 0u64..1000) {
        let mut index = BlockIndex::new(&h);
        // Query separators twice (second pass must hit the cache) and
        // compare against the direct Hypergraph machinery.
        let seps: Vec<BitSet> = (0..4)
            .map(|i| derive_set(h.num_vertices(), seed.wrapping_add(i * 131)))
            .collect();
        for _round in 0..2 {
            for sep in &seps {
                let sid = index.intern(sep);
                let r = index.components(sid);
                let cached: Vec<BitSet> = index
                    .comps(r)
                    .iter()
                    .map(|&c| index.arena.to_bitset(c))
                    .collect();
                let fresh = h.vertex_components(sep);
                prop_assert_eq!(&cached, &fresh, "components of {}", h.render_vertex_set(sep));
                for (&cid, comp) in index.comps(r).to_vec().iter().zip(&fresh) {
                    let t = index.edges_touching(cid);
                    let cached_touch: Vec<usize> =
                        index.touching(t).iter().map(|&e| e as usize).collect();
                    let fresh_touch: Vec<usize> = h.edges_touching(comp).to_vec();
                    prop_assert_eq!(&cached_touch, &fresh_touch);
                    let u = index.component_union(cid);
                    let fresh_union = h.union_of_edges(fresh_touch.iter().copied());
                    prop_assert_eq!(index.arena.to_bitset(u), fresh_union);
                }
            }
        }
        // Second pass was all hits: misses counted each distinct separator once.
        let stats = index.stats();
        prop_assert!(stats.comp_hits >= stats.comp_misses);
    }

    #[test]
    fn arena_soft_generation_agrees_with_reference(h in small_hypergraph(), k in 1usize..3) {
        let limits = SoftLimits::default();
        let fast = soft::soft_bags_with(&h, k, &limits).unwrap();
        let slow = reference::soft_bags_with(&h, k, &limits).unwrap();
        prop_assert_eq!(fast, slow);
        let fast_u = soft::component_unions(&h, k, &limits).unwrap();
        let slow_u = reference::component_unions(&h, k, &limits).unwrap();
        prop_assert_eq!(fast_u, slow_u);
        let fast_w = soft::lambda_unions(h.num_vertices(), h.edges(), k, &limits).unwrap();
        let slow_w = reference::lambda_unions(h.num_vertices(), h.edges(), k, &limits).unwrap();
        prop_assert_eq!(fast_w, slow_w);
    }

    #[test]
    fn shared_index_solves_like_fresh_instances(h in small_hypergraph()) {
        // The shw sweep over a shared index must agree with per-k fresh
        // solves, and the hierarchy solver (which builds its CTD instance
        // on the hierarchy's own index) must agree with shw at level 0.
        let limits = SoftLimits::default();
        let mut index = BlockIndex::new(&h);
        for k in 1..=2 {
            let shared = softhw::core::shw::shw_leq_indexed(&mut index, k, &limits).unwrap();
            let fresh = softhw::core::shw::shw_leq_with(&h, k, &limits).unwrap();
            let level0 = softhw::core::soft_iter::shw_i_leq(&h, k, 0, &limits).unwrap();
            prop_assert_eq!(shared.is_some(), fresh.is_some(), "k = {}", k);
            prop_assert_eq!(level0.is_some(), fresh.is_some(), "shw_0 vs shw at k = {}", k);
            if let Some(td) = shared {
                prop_assert_eq!(td.validate(&h), Ok(()));
            }
            if let Some(td) = level0 {
                prop_assert_eq!(td.validate(&h), Ok(()));
            }
        }
    }
}
