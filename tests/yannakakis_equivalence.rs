//! Randomised end-to-end correctness: for random cyclic queries over
//! random skewed data, *every* candidate tree decomposition must produce
//! the same aggregate as the naive binary-join baseline.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use softhw::core::ctd_opt::sample_random;
use softhw::core::soft::soft_bags;
use softhw::engine::{Database, Table};
use softhw::query::{atom_relations, bind, build_plan, execute, parse_sql};

/// A random binary-relation database plus a cyclic join query over it.
fn random_instance(seed: u64) -> (Database, String) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let num_tables = rng.gen_range(3..=5);
    let rows = rng.gen_range(30..150u64);
    let domain = rng.gen_range(8..30u64);
    let mut db = Database::new();
    for t in 0..num_tables {
        let mut tab = Table::new(&format!("t{t}"), &["x", "y"], None);
        for _ in 0..rows {
            tab.push_row(&[rng.gen_range(0..domain), rng.gen_range(0..domain)]);
        }
        db.add_table(tab);
    }
    // A cycle through all tables: t0.y = t1.x, ..., t_{n-1}.y = t0.x.
    let mut conds = Vec::new();
    for t in 0..num_tables {
        conds.push(format!("a{t}.y = a{}.x", (t + 1) % num_tables));
    }
    let froms: Vec<String> = (0..num_tables).map(|t| format!("t{t} AS a{t}")).collect();
    let sql = format!(
        "SELECT MIN(a0.x) FROM {} WHERE {}",
        froms.join(", "),
        conds.join(" AND ")
    );
    (db, sql)
}

#[test]
fn all_decompositions_agree_with_baseline() {
    for seed in 0..12 {
        let (db, sql) = random_instance(seed);
        let cq = bind(&parse_sql(&sql).expect("generated SQL"), &db).expect("binds");
        let h = cq.hypergraph();
        let atoms = atom_relations(&cq, &db);
        let baseline = softhw::engine::baseline::run_baseline(&atoms, &[cq.agg_var], u64::MAX)
            .expect("no cap")
            .answer
            .min_of(cq.agg_var);
        let bags = soft_bags(&h, 2);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
        let mut tried = 0;
        for _ in 0..6 {
            let Some(td) = sample_random(&h, &bags, &mut rng) else {
                break;
            };
            let plan = build_plan(&cq, &h, &td).expect("plannable");
            let res = execute(&cq, &atoms, &plan);
            assert_eq!(
                res.value, baseline,
                "seed {seed}: decomposition changed the answer"
            );
            tried += 1;
        }
        assert!(
            tried > 0 || bags.is_empty() || baseline.is_none() || {
                // width-2 may genuinely not suffice for dense random cycles;
                // fall back to the exact solver for at least one data point
                let (_, td) = softhw::core::shw::shw(&h);
                let plan = build_plan(&cq, &h, &td).expect("plannable");
                execute(&cq, &atoms, &plan).value == baseline
            }
        );
    }
}

#[test]
fn min_max_count_agree_on_path_query() {
    let mut rng = SmallRng::seed_from_u64(99);
    let mut db = Database::new();
    for t in 0..3 {
        let mut tab = Table::new(&format!("t{t}"), &["x", "y"], None);
        for _ in 0..80 {
            tab.push_row(&[rng.gen_range(0..12u64), rng.gen_range(0..12u64)]);
        }
        db.add_table(tab);
    }
    for agg in ["MIN", "MAX"] {
        let sql =
            format!("SELECT {agg}(a0.x) FROM t0 AS a0, t1 AS a1, t2 AS a2 WHERE a0.y = a1.x AND a1.y = a2.x");
        let cq = bind(&parse_sql(&sql).expect("sql"), &db).expect("binds");
        let h = cq.hypergraph();
        let atoms = atom_relations(&cq, &db);
        let (_, td) = softhw::core::shw::shw(&h);
        let plan = build_plan(&cq, &h, &td).expect("plannable");
        let res = execute(&cq, &atoms, &plan);
        let base = softhw::engine::baseline::run_baseline(&atoms, &[cq.agg_var], u64::MAX)
            .expect("no cap")
            .answer;
        let expect = if agg == "MIN" {
            base.min_of(cq.agg_var)
        } else {
            base.max_of(cq.agg_var)
        };
        assert_eq!(res.value, expect, "{agg} agrees");
    }
}

#[test]
fn paper_queries_run_end_to_end_at_small_scale() {
    use softhw::workloads::{hetionet, lsqb, tpcds};
    let dbs: Vec<(Database, &str)> = vec![
        (
            tpcds::generate(
                &tpcds::TpcdsScale {
                    customers: 150,
                    web_sales: 400,
                    catalog_sales: 400,
                    warehouses: 8,
                },
                5,
            ),
            "q_ds",
        ),
        (
            hetionet::generate(
                &hetionet::HetionetScale {
                    nodes: 80,
                    edges_per_relation: 250,
                },
                5,
            ),
            "q_hto3",
        ),
        (
            lsqb::generate(
                &lsqb::LsqbScale {
                    cities: 25,
                    countries: 4,
                    persons: 120,
                    knows: 300,
                },
                5,
            ),
            "q_lb",
        ),
    ];
    for (db, name) in dbs {
        let (_, sql, _) = softhw::workloads::queries::all_queries()
            .into_iter()
            .find(|(n, _, _)| *n == name)
            .expect("known");
        let cq = bind(&parse_sql(sql).expect("sql"), &db).expect("binds");
        let h = cq.hypergraph();
        let atoms = atom_relations(&cq, &db);
        let (_, td) = softhw::core::shw::shw(&h);
        let plan = build_plan(&cq, &h, &td).expect("plannable");
        let res = execute(&cq, &atoms, &plan);
        let base = softhw::engine::baseline::run_baseline(&atoms, &[cq.agg_var], u64::MAX)
            .expect("no cap")
            .answer;
        let expect = match cq.agg {
            softhw::query::Agg::Min => base.min_of(cq.agg_var),
            softhw::query::Agg::Max => base.max_of(cq.agg_var),
            softhw::query::Agg::Count => Some(base.len() as u64),
        };
        assert_eq!(res.value, expect, "{name} agrees with baseline");
    }
}
