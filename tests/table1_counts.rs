//! Machine-checks Table 1 of the paper: the combinatorial columns
//! (hypergraph size, candidate-bag counts, ConCov counts, ConCov-shw)
//! are pure functions of the queries and must match exactly.

use softhw::core::constraints::{concov_exact_filter, Trivial};
use softhw::core::cover::find_exact_connected_cover;
use softhw::core::ctd_opt::best;
use softhw::core::soft::{cover_bags, soft_bags};
use softhw::query::{bind, parse_sql};
use softhw::workloads::{queries, schema_for};

/// Paper's Table 1: (query, ConCov-shw, |H|, |Soft_{H,k}|, ConCov-Soft).
const TABLE1: [(&str, usize, usize, usize, usize); 6] = [
    ("q_ds", 2, 5, 9, 8),
    ("q_hto", 2, 7, 25, 16),
    ("q_hto2", 2, 7, 25, 16),
    ("q_hto3", 2, 4, 9, 8),
    ("q_hto4", 2, 6, 17, 12),
    ("q_lb", 3, 6, 17, 15),
];

fn hypergraph_of(name: &str) -> softhw::hypergraph::Hypergraph {
    let (_, sql, _) = queries::all_queries()
        .into_iter()
        .find(|(n, _, _)| *n == name)
        .expect("known query");
    let db = schema_for(name);
    bind(&parse_sql(sql).expect("fixed SQL"), &db)
        .expect("binds")
        .hypergraph()
}

#[test]
fn hypergraph_sizes_match() {
    for (name, _, edges, _, _) in TABLE1 {
        let h = hypergraph_of(name);
        assert_eq!(h.num_edges(), edges, "{name}: |H|");
        assert!(h.is_connected(), "{name} is connected");
    }
}

#[test]
fn candidate_bag_counts_match() {
    for (name, _, _, soft_count, _) in TABLE1 {
        let (_, _, k) = queries::all_queries()
            .into_iter()
            .find(|(n, _, _)| *n == name)
            .expect("known");
        let h = hypergraph_of(name);
        let bags = cover_bags(&h, k, true);
        assert_eq!(bags.len(), soft_count, "{name}: |Soft_{{H,{k}}}|");
        // the prototype's candidate set is a subset of Definition 3's
        let full = soft_bags(&h, k);
        for b in &bags {
            assert!(full.contains(b), "{name}: cover bag must be in Soft");
        }
    }
}

#[test]
fn concov_counts_match() {
    for (name, _, _, _, concov_count) in TABLE1 {
        let (_, _, k) = queries::all_queries()
            .into_iter()
            .find(|(n, _, _)| *n == name)
            .expect("known");
        let h = hypergraph_of(name);
        let bags = cover_bags(&h, k, true);
        let cc = concov_exact_filter(&h, k, &bags);
        assert_eq!(cc.len(), concov_count, "{name}: ConCov-Soft");
        for b in &cc {
            assert!(find_exact_connected_cover(&h, b, k).is_some());
        }
    }
}

#[test]
fn concov_shw_matches() {
    for (name, ccshw, _, _, _) in TABLE1 {
        let h = hypergraph_of(name);
        let found = (1..=h.num_edges())
            .find(|&kk| {
                let b = concov_exact_filter(&h, kk, &cover_bags(&h, kk, true));
                best(&h, &b, &Trivial).is_some()
            })
            .expect("some width works");
        assert_eq!(found, ccshw, "{name}: ConCov-shw");
    }
}

#[test]
fn shw_of_all_benchmark_queries_is_at_most_concov_shw() {
    // Constraints can only increase width (Section 6).
    for (name, ccshw, _, _, _) in TABLE1 {
        let h = hypergraph_of(name);
        let (s, _) = softhw::core::shw::shw(&h);
        assert!(s <= ccshw, "{name}: shw {s} <= ConCov-shw {ccshw}");
    }
}
