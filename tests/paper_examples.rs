//! Integration tests pinning the paper's concrete claims about its named
//! example hypergraphs (Examples 1–2, Appendix A.2, Section 6).

use softhw::core::constraints::{concov_filter, Trivial};
use softhw::core::ctd_opt::best;
use softhw::core::soft::{soft_bags, soft_witness, SoftLimits};
use softhw::core::soft_iter::{ghw, shw_i, soft_i_witness};
use softhw::core::td::TreeDecomposition;
use softhw::core::{candidate_td, hw, shw};
use softhw::hypergraph::named;
use softhw::hypergraph::Hypergraph;

#[test]
fn example1_h2_widths() {
    // Example 1: ghw(H2) = shw(H2) = 2 and hw(H2) = 3.
    let h = named::h2();
    assert_eq!(shw::shw(&h).0, 2);
    assert_eq!(hw::hw(&h).0, 3);
    assert_eq!(ghw(&h, &SoftLimits::default()).unwrap(), 2);
}

#[test]
fn example1_figure_1b_is_a_soft_hd() {
    // The decomposition of Figure 1b is a CTD for Soft_{H2,2}.
    let h = named::h2();
    let mut td = TreeDecomposition::new(h.vset(&["2", "6", "7", "a", "b"]));
    let mid = td.add_child(td.root(), h.vset(&["2", "5", "6", "a", "b"]));
    td.add_child(mid, h.vset(&["2", "3", "4", "5", "a", "b"]));
    td.add_child(td.root(), h.vset(&["1", "2", "7", "8", "a", "b"]));
    assert_eq!(td.validate(&h), Ok(()));
    let bags = soft_bags(&h, 2);
    assert!(softhw::core::ctd::is_candidate_td(&h, &td, &bags));
}

#[test]
fn hierarchy_on_h2_interpolates() {
    // ghw <= shw_1 <= shw_0 = shw (Section 5, Lemma 3 + Theorem 7).
    let h = named::h2();
    let limits = SoftLimits::default();
    let s0 = shw_i(&h, 0, &limits).unwrap();
    let s1 = shw_i(&h, 1, &limits).unwrap();
    let g = ghw(&h, &limits).unwrap();
    assert_eq!(s0, 2);
    assert!(g <= s1 && s1 <= s0);
}

/// The Figure 9 / Figure 2b decomposition shared by H3 and H'3.
fn figure9_td(h: &Hypergraph) -> TreeDecomposition {
    let gh = ["g11", "g12", "g21", "g22", "h11", "h12", "h21", "h22"];
    let bag = |extra: &[&str]| {
        let mut names: Vec<&str> = gh.to_vec();
        names.extend_from_slice(extra);
        h.vset(&names)
    };
    let mut td = TreeDecomposition::new(bag(&["3", "0'", "0"]));
    let l1 = td.add_child(td.root(), bag(&["3", "0", "1"]));
    let l2 = td.add_child(l1, bag(&["3", "1", "2"]));
    td.add_child(l2, bag(&["4", "2"]));
    let r1 = td.add_child(td.root(), bag(&["3'", "0'", "1'"]));
    let r2 = td.add_child(r1, bag(&["3'", "1'", "2'"]));
    td.add_child(r2, bag(&["3'", "2'", "4'"]));
    td
}

fn big_limits() -> SoftLimits {
    SoftLimits {
        max_lambda_sets: 20_000_000,
        max_bags: 4_000_000,
    }
}

#[test]
fn appendix_a2_figure9_is_valid_td_of_h3() {
    let h = named::h3();
    let td = figure9_td(&h);
    assert_eq!(td.validate(&h), Ok(()));
}

#[test]
#[ignore = "heavy: materialises the Soft witness search on 95 edges (~seconds in release)"]
fn appendix_a2_h3_shw_at_most_3() {
    // Every Figure 9 bag is in Soft_{H3,3} => shw(H3) <= 3.
    let h = named::h3();
    let td = figure9_td(&h);
    let limits = big_limits();
    for bag in td.bags() {
        assert!(
            soft_witness(&h, 3, bag, &limits).is_some(),
            "bag {} must be in Soft_{{H3,3}}",
            h.render_vertex_set(bag)
        );
    }
}

#[test]
#[ignore = "heavy: hw search on 95 edges"]
fn appendix_a2_h3_hw_at_most_4() {
    let h = named::h3();
    let g = hw::hw_leq(&h, 4).expect("hw(H3) = 4 per the paper");
    assert!(g.is_hd(&h));
}

#[test]
#[ignore = "heavy: level-1 subedge closure on 96 edges (~minutes in release)"]
fn example2_h3_prime_upper_bounds() {
    // Example 2 claims shw1(H'3) <= 3 via the Figure 2b bags being in
    // Soft^1_{H'3,3}; our membership checker confirms that direction.
    //
    // DISCREPANCY (see EXPERIMENTS.md): the paper additionally claims the
    // root bag is NOT in Soft^0_{H'3,3} ("any λ_p would induce only a
    // single component that contains 4'"). Machine-checking refutes this
    // for the hypergraph as transcribed from Appendix A.2 + footnote 1:
    // λ2 = {hor1, hor2, {0',3'}} splits H'3 into a component avoiding 4'
    // (4' sits inside the separator through hor1, and its remaining
    // links {2',4'}, {3',4'} fall into the other component or inside the
    // separator), so (hor1 ∪ hor2 ∪ {0,0'}) ∩ ⋃C reconstructs the root
    // bag at level 0 already. The hand-verified witness is asserted here.
    let h = named::h3_prime();
    let td = figure9_td(&h);
    assert_eq!(td.validate(&h), Ok(()));
    let limits = big_limits();
    // paper's claimed direction: all bags in Soft^1
    for bag in td.bags() {
        assert!(
            soft_i_witness(&h, 3, 1, bag, &limits)
                .expect("within limits")
                .is_some(),
            "bag {} must be in Soft^1_{{H'3,3}}",
            h.render_vertex_set(bag)
        );
    }
    // the machine-checked finding: the root bag already has a Soft^0
    // witness (hand-verified; documents the Example 2 discrepancy)
    let root_bag = td.bag(td.root());
    let (lambda1, u) = soft_witness(&h, 3, root_bag, &limits).expect("the level-0 witness exists");
    let mut reconstructed = h.union_of_edges(lambda1);
    reconstructed.intersect_with(&u);
    assert_eq!(&reconstructed, root_bag);
    assert!(!u.contains(h.vertex_by_name("4'").expect("vertex 4'")));
}

#[test]
fn section6_c5_concov_width_jump() {
    // Section 6: ConCov-shw(C5) = 3 although hw(C5) = shw(C5) = 2.
    let c5 = named::cycle(5);
    assert_eq!(hw::hw(&c5).0, 2);
    assert_eq!(shw::shw(&c5).0, 2);
    let w2 = concov_filter(&c5, 2, &soft_bags(&c5, 2));
    assert!(best(&c5, &w2, &Trivial).is_none());
    let w3 = concov_filter(&c5, 3, &soft_bags(&c5, 3));
    let (td, _) = best(&c5, &w3, &Trivial).expect("ConCov-shw(C5) = 3");
    assert_eq!(td.validate(&c5), Ok(()));
}

#[test]
fn example3_four_cycle_has_width_2_everywhere() {
    let h = named::four_cycle_query();
    assert_eq!(hw::hw(&h).0, 2);
    assert_eq!(shw::shw(&h).0, 2);
    // And with ConCov the width stays 2 on the 4-cycle (D2 of Example 3:
    // S ⋈ T and R ⋈ U are connected covers).
    let cc = concov_filter(&h, 2, &soft_bags(&h, 2));
    assert!(candidate_td(&h, &cc).is_some());
}

#[test]
fn games_match_widths_on_h2() {
    use softhw::core::games;
    let h = named::h2();
    assert_eq!(games::mon_marshal_width(&h), 3); // = hw
    assert_eq!(games::marshal_width(&h), 2);
    assert_eq!(games::mon_irm_width(&h), 2); // <= shw, here equal
}
